#include "plan/dp_optimizer.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::plan {
namespace {

using Mask = std::uint32_t;

/// One equi-join atom with the indexes (into the query's relation list) of
/// the relations it connects.
struct Edge {
  catalog::AttributeId a = catalog::kInvalidId;
  catalog::AttributeId b = catalog::kInvalidId;
  std::size_t rel_a = 0;
  std::size_t rel_b = 0;
};

/// DP table entry for one connected subset.
struct Entry {
  double cost = std::numeric_limits<double>::infinity();
  double rows = 0.0;
  Mask left_split = 0;  ///< 0 for singletons
};

class Dp {
 public:
  Dp(const catalog::Catalog& cat, const StatsCatalog* stats,
     const QuerySpec& spec, const DpOptimizerOptions& options)
      : cat_(cat), stats_(stats), spec_(spec), options_(options),
        relations_(spec.Relations()) {
    for (std::size_t i = 0; i < relations_.size(); ++i) {
      index_of_[relations_[i]] = i;
    }
    for (const JoinStep& step : spec.joins) {
      for (const algebra::EquiJoinAtom& atom : step.atoms) {
        edges_.push_back(Edge{atom.left, atom.right,
                              index_of_.at(cat.attribute(atom.left).relation),
                              index_of_.at(cat.attribute(atom.right).relation)});
      }
    }
    table_.resize(std::size_t{1} << relations_.size());
  }

  Result<DpOptimizerResult> Run() {
    const std::size_t n = relations_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Mask mask = Mask{1} << i;
      double rows = RowsOf(relations_[i]);
      if (const std::optional<double> measured = MeasuredRows(mask)) {
        rows = *measured;
      }
      table_[mask] = Entry{0.0, rows, 0};
      ++explored_;
    }

    const Mask full = static_cast<Mask>((std::size_t{1} << n) - 1);
    for (Mask mask = 1; mask <= full; ++mask) {
      if ((mask & (mask - 1)) == 0) continue;  // singleton, already seeded
      // Measured output cardinality of this subset, if a profiled run fed it
      // back. Applied uniformly across splits: the split choice inside the
      // subset stays driven by the split costs, while every cost above the
      // subset sees the corrected row count.
      const std::optional<double> measured = MeasuredRows(mask);
      // Canonical split: the left side contains the subset's lowest bit, so
      // each unordered split is tried once with a fixed orientation.
      const Mask low = mask & static_cast<Mask>(-static_cast<std::int32_t>(mask));
      Entry best;
      for (Mask sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
        if ((sub & low) == 0) continue;
        const Mask rest = mask & ~sub;
        if (!options_.bushy && (rest & (rest - 1)) != 0) continue;
        const Entry& l = table_[sub];
        const Entry& r = table_[rest];
        if (!Connected(l) || !Connected(r)) continue;
        ++explored_;
        const double selectivity = CrossSelectivity(sub, rest);
        if (selectivity < 0.0) continue;  // no connecting edge: cross join
        const double rows =
            measured ? *measured : l.rows * r.rows * selectivity;
        const double cost = l.cost + r.cost + rows;
        if (cost < best.cost) best = Entry{cost, rows, sub};
      }
      if (Connected(best)) table_[mask] = best;
    }

    if (!Connected(table_[full])) {
      return InvalidArgumentError(
          "query join graph is disconnected; cross joins are out of model");
    }
    DpOptimizerResult result;
    result.estimated_cost = table_[full].cost;
    result.subsets_explored = explored_;
    tree_ = Rebuild(full);
    return result;  // caller attaches the finished plan
  }

  std::unique_ptr<PlanNode> TakeTree() { return std::move(tree_); }

 private:
  static bool Connected(const Entry& e) {
    return e.cost < std::numeric_limits<double>::infinity();
  }

  double RowsOf(catalog::RelationId rel) const {
    return stats_ != nullptr ? stats_->Of(rel).rows : RelationStats{}.rows;
  }

  /// Feedback-store row count of the subset `mask`, if recorded.
  std::optional<double> MeasuredRows(Mask mask) const {
    if (options_.feedback == nullptr) return std::nullopt;
    std::vector<catalog::RelationId> subset;
    for (std::size_t i = 0; i < relations_.size(); ++i) {
      if (mask & (Mask{1} << i)) subset.push_back(relations_[i]);
    }
    return options_.feedback->Lookup(SpecSubsetSignature(cat_, spec_, subset));
  }

  double DistinctOf(catalog::AttributeId attr) const {
    const catalog::RelationId rel = cat_.attribute(attr).relation;
    return stats_ != nullptr ? stats_->Of(rel).DistinctOf(attr)
                             : RelationStats{}.DistinctOf(attr);
  }

  /// Product of per-atom selectivities for edges crossing the split, or -1
  /// when no edge crosses (cross join, out of model).
  double CrossSelectivity(Mask left, Mask right) const {
    double selectivity = 1.0;
    bool any = false;
    for (const Edge& e : edges_) {
      const Mask ma = Mask{1} << e.rel_a;
      const Mask mb = Mask{1} << e.rel_b;
      const bool crosses = ((ma & left) && (mb & right)) ||
                           ((mb & left) && (ma & right));
      if (!crosses) continue;
      any = true;
      selectivity /= std::max({DistinctOf(e.a), DistinctOf(e.b), 1.0});
    }
    return any ? selectivity : -1.0;
  }

  std::unique_ptr<PlanNode> Rebuild(Mask mask) const {
    if ((mask & (mask - 1)) == 0) {
      std::size_t i = 0;
      while (!(mask & (Mask{1} << i))) ++i;
      return PlanNode::Relation(relations_[i]);
    }
    const Mask sub = table_[mask].left_split;
    const Mask rest = mask & ~sub;
    std::unique_ptr<PlanNode> left = Rebuild(sub);
    std::unique_ptr<PlanNode> right = Rebuild(rest);
    // Atoms crossing the split, oriented left-side attribute first.
    std::vector<algebra::EquiJoinAtom> atoms;
    for (const Edge& e : edges_) {
      const Mask ma = Mask{1} << e.rel_a;
      const Mask mb = Mask{1} << e.rel_b;
      if ((ma & sub) && (mb & rest)) {
        atoms.push_back(algebra::EquiJoinAtom{e.a, e.b});
      } else if ((mb & sub) && (ma & rest)) {
        atoms.push_back(algebra::EquiJoinAtom{e.b, e.a});
      }
    }
    return PlanNode::Join(std::move(left), std::move(right), std::move(atoms));
  }

  const catalog::Catalog& cat_;
  const StatsCatalog* stats_;
  const QuerySpec& spec_;
  const DpOptimizerOptions& options_;
  std::vector<catalog::RelationId> relations_;
  std::map<catalog::RelationId, std::size_t> index_of_;
  std::vector<Edge> edges_;
  std::vector<Entry> table_;
  std::unique_ptr<PlanNode> tree_;
  std::size_t explored_ = 0;
};

}  // namespace

Result<DpOptimizerResult> OptimizeJoinOrder(const catalog::Catalog& cat,
                                            const StatsCatalog* stats,
                                            const QuerySpec& spec,
                                            const DpOptimizerOptions& options) {
  CISQP_RETURN_IF_ERROR(spec.Validate(cat));
  if (spec.Relations().size() > options.max_relations) {
    return InvalidArgumentError(
        "query joins " + std::to_string(spec.Relations().size()) +
        " relations; the DP optimizer is capped at " +
        std::to_string(options.max_relations));
  }
  CISQP_TRACE_SPAN(span, "plan.dp_optimize");
  span.AddAttribute("relations", spec.Relations().size());
  Dp dp(cat, stats, spec, options);
  CISQP_ASSIGN_OR_RETURN(DpOptimizerResult result, dp.Run());
  CISQP_METRIC_ADD("dp.subsets_explored", result.subsets_explored);
  span.AddAttribute("subsets_explored", result.subsets_explored);
  span.AddAttribute("estimated_cost", result.estimated_cost);
  PlanBuilder builder(cat, stats, options.feedback);
  CISQP_ASSIGN_OR_RETURN(result.plan,
                         builder.Finish(dp.TakeTree(), spec, options.build_options));
  return result;
}

}  // namespace cisqp::plan
