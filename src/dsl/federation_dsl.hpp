// Federation DSL: a declarative text format for a whole federation — the
// schema (servers, relations, joinable pairs; paper Fig. 1) and the policy
// (authorizations, Fig. 3; optional open-policy denials).
//
//   # the paper's medical federation
//   server S_I;
//   server S_H;
//   relation Insurance @ S_I (Holder int key, Plan string);
//   relation Hospital  @ S_H (Patient int key, Disease string, Physician string);
//   joinable Holder = Patient;
//   grant Holder, Plan to S_I;
//   grant Holder, Plan, Treatment on (Holder, Patient), (Disease, Illness) to S_I;
//   deny Holder, Disease to S_I;
//   deny Illness on (Illness, Disease) to S_D;
//
// Statements end with ';'. '#' starts a line comment. Keywords are
// case-insensitive; names are case-sensitive. Attribute types: int, double,
// string; `key` marks primary-key columns. `grant`/`deny` paths are
// parenthesized attribute pairs after `on`.
//
// `ParseFederation` builds the catalog and both policy flavors in statement
// order (so later statements may reference earlier names);
// `SerializeFederation` renders them back in canonical form (round-trip
// stable).
#pragma once

#include <string>
#include <string_view>

#include "authz/authorization.hpp"
#include "authz/open_policy.hpp"
#include "catalog/catalog.hpp"

namespace cisqp::dsl {

struct ParsedFederation {
  catalog::Catalog catalog;
  authz::AuthorizationSet authorizations;
  authz::OpenPolicySet denials;
};

/// Parses a federation description. Fails with kInvalidArgument (with line
/// number) on syntax errors, propagating catalog/policy validation errors.
Result<ParsedFederation> ParseFederation(std::string_view text);

/// Renders a federation in the DSL's canonical form. Pass nullptr for parts
/// to omit.
std::string SerializeFederation(const catalog::Catalog& cat,
                                const authz::AuthorizationSet* authorizations,
                                const authz::OpenPolicySet* denials);

}  // namespace cisqp::dsl
