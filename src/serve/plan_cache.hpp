// PlanCache: (canonical query signature, policy epoch) → finished planning
// (DESIGN.md §15.2).
//
// A hit skips the entire front half of the pipeline — parse/bind still run
// (they produced the signature), but join-order enumeration, the per-order
// SafePlanner traversals, and cost ranking are all amortized to zero. Both
// outcomes are cached: a feasible search caches its PlanHandle, an
// infeasible one caches the typed kInfeasible status, so repeated denied
// shapes are as cheap as repeated granted ones and a cached request
// reproduces the cold request's answer bit-for-bit, success or failure.
//
// Epoch invalidation contract: every entry is stamped with the policy epoch
// it was planned under. Lookup(key, epoch) only returns entries of exactly
// that epoch; a stale entry found under the key is evicted on the spot (and
// counted as serve.plan_cache.stale_evictions — the lookup outcomes
// {hit, miss, stale_eviction} partition, a stale hit is not also a miss),
// so a policy change can never serve a pre-change plan. Entries inserted
// after a bump are unaffected by it.
//
// Incremental policy edits retain instead of sweep: every entry records the
// relations its query touches, and AdvanceEpoch(epoch, changed_relations)
// re-stamps to the new epoch exactly the entries stamped with the
// immediately prior epoch whose relation sets are non-empty and disjoint
// from the edit's delta — plans the edit provably could not have changed
// (DESIGN.md §16) — while evicting the rest as stale. Entries with older
// stamps were inserted by requests racing an earlier edit and may be
// invalid under a delta this bump never saw, so they always die.
// InvalidateBefore remains the full sweep for non-incremental edits.
//
// Bounded LRU: at `capacity` entries the least-recently-used entry is
// evicted. Thread-safe behind one mutex; the payloads are shared-const so
// concurrent requests execute the same cached plan without copying.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/idset.hpp"
#include "common/status.hpp"
#include "planner/plan_search.hpp"

namespace cisqp::serve {

/// One cached planning outcome: a feasible plan handle, or the typed
/// infeasibility verdict.
struct CachedPlanEntry {
  Status verdict;             ///< Ok (handle set) or kInfeasible
  planner::PlanHandle handle; ///< set iff verdict.ok()
  std::uint64_t epoch = 0;    ///< policy epoch the planning ran under
  /// Relations the planned query touches; AdvanceEpoch retains the entry
  /// across an incremental policy edit when this is non-empty and disjoint
  /// from the edit's changed relations. Empty means "unknown": never
  /// retained.
  IdSet relations;
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The entry planned for `key` under exactly `epoch`, or nullopt. A
  /// same-key entry of a different epoch is evicted (stale).
  std::optional<CachedPlanEntry> Lookup(const std::string& key,
                                        std::uint64_t epoch);

  /// Inserts (or replaces) the entry for `key`. Evicts LRU at capacity.
  void Insert(const std::string& key, CachedPlanEntry entry);

  /// Drops every entry stamped with an epoch below `epoch`. Returns the
  /// number invalidated (the epoch-bump sweep; lazy eviction in Lookup
  /// would reclaim them too, this makes the invalidation prompt and
  /// countable).
  std::size_t InvalidateBefore(std::uint64_t epoch);

  /// Delta-aware epoch bump: entries stamped with the immediately prior
  /// epoch (`epoch - 1`) whose relation sets are non-empty and disjoint
  /// from `changed_relations` are re-stamped to `epoch` and kept (the edit
  /// could not have changed their plans); every other pre-`epoch` entry is
  /// evicted as stale — an older stamp may have missed an intervening
  /// edit's delta. Returns the number retained.
  std::size_t AdvanceEpoch(std::uint64_t epoch, const IdSet& changed_relations);

  void Clear();

  std::size_t size() const;
  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t stale_evictions() const noexcept {
    return stale_.load(std::memory_order_relaxed);
  }
  std::uint64_t retained() const noexcept {
    return retained_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    CachedPlanEntry entry;
    std::list<std::string>::iterator lru_it;
  };

  void Touch(Slot& slot, const std::string& key);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> map_;
  std::list<std::string> lru_;  ///< most-recent first
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> stale_{0};
  mutable std::atomic<std::uint64_t> retained_{0};
};

}  // namespace cisqp::serve
