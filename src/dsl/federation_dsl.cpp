#include "dsl/federation_dsl.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "common/strings.hpp"

namespace cisqp::dsl {
namespace {

enum class TokKind : std::uint8_t {
  kWord,    ///< identifier or keyword
  kComma,
  kSemi,
  kAt,
  kEq,
  kLParen,
  kRParen,
  kEnd,
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::size_t line = 1;
};

Result<std::vector<Tok>> Lex(std::string_view text) {
  std::vector<Tok> out;
  std::size_t line = 1;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < text.size() && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                                 text[i] == '_' || text[i] == '.')) {
        ++i;
      }
      out.push_back(Tok{TokKind::kWord, std::string(text.substr(start, i - start)), line});
      continue;
    }
    const auto push1 = [&](TokKind kind) {
      out.push_back(Tok{kind, std::string(1, c), line});
      ++i;
    };
    switch (c) {
      case ',': push1(TokKind::kComma); break;
      case ';': push1(TokKind::kSemi); break;
      case '@': push1(TokKind::kAt); break;
      case '=': push1(TokKind::kEq); break;
      case '(': push1(TokKind::kLParen); break;
      case ')': push1(TokKind::kRParen); break;
      default:
        return InvalidArgumentError("line " + std::to_string(line) +
                                    ": unexpected character '" + std::string(1, c) + "'");
    }
  }
  out.push_back(Tok{TokKind::kEnd, "", line});
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<ParsedFederation> Run() {
    ParsedFederation fed;
    while (!At(TokKind::kEnd)) {
      CISQP_ASSIGN_OR_RETURN(std::string keyword, ExpectWord("statement keyword"));
      const std::string lower = ToLowerAscii(keyword);
      if (lower == "server") {
        CISQP_RETURN_IF_ERROR(ParseServer(fed));
      } else if (lower == "relation") {
        CISQP_RETURN_IF_ERROR(ParseRelation(fed));
      } else if (lower == "joinable") {
        CISQP_RETURN_IF_ERROR(ParseJoinable(fed));
      } else if (lower == "grant") {
        CISQP_RETURN_IF_ERROR(ParseRule(fed, /*is_grant=*/true));
      } else if (lower == "deny") {
        CISQP_RETURN_IF_ERROR(ParseRule(fed, /*is_grant=*/false));
      } else {
        return Err("unknown statement '" + keyword + "'");
      }
      CISQP_RETURN_IF_ERROR(Expect(TokKind::kSemi, "';'"));
    }
    return fed;
  }

 private:
  const Tok& Peek() const { return toks_[pos_]; }
  bool At(TokKind kind) const { return Peek().kind == kind; }
  Tok Advance() {
    Tok t = toks_[pos_];
    if (!At(TokKind::kEnd)) ++pos_;
    return t;
  }

  Status Err(const std::string& message) const {
    return InvalidArgumentError("line " + std::to_string(Peek().line) + ": " + message);
  }

  Status Expect(TokKind kind, std::string_view what) {
    if (!At(kind)) return Err("expected " + std::string(what));
    Advance();
    return Status::Ok();
  }

  Result<std::string> ExpectWord(std::string_view what) {
    if (!At(TokKind::kWord)) return Err("expected " + std::string(what));
    return Advance().text;
  }

  Status ParseServer(ParsedFederation& fed) {
    CISQP_ASSIGN_OR_RETURN(std::string name, ExpectWord("server name"));
    return fed.catalog.AddServer(name).status();
  }

  // relation Name @ Server (attr type [key], ...)
  Status ParseRelation(ParsedFederation& fed) {
    CISQP_ASSIGN_OR_RETURN(std::string name, ExpectWord("relation name"));
    CISQP_RETURN_IF_ERROR(Expect(TokKind::kAt, "'@' before the home server"));
    CISQP_ASSIGN_OR_RETURN(std::string server_name, ExpectWord("server name"));
    CISQP_ASSIGN_OR_RETURN(catalog::ServerId server,
                           fed.catalog.FindServer(server_name));
    CISQP_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'(' before the column list"));
    std::vector<catalog::AttributeSpec> specs;
    std::vector<std::string> key;
    while (true) {
      CISQP_ASSIGN_OR_RETURN(std::string attr, ExpectWord("attribute name"));
      CISQP_ASSIGN_OR_RETURN(std::string type_word, ExpectWord("attribute type"));
      catalog::ValueType type;
      const std::string type_lower = ToLowerAscii(type_word);
      if (type_lower == "int") {
        type = catalog::ValueType::kInt64;
      } else if (type_lower == "double") {
        type = catalog::ValueType::kDouble;
      } else if (type_lower == "string") {
        type = catalog::ValueType::kString;
      } else {
        return Err("unknown type '" + type_word + "' (int, double, string)");
      }
      if (At(TokKind::kWord) && EqualsIgnoreCase(Peek().text, "key")) {
        Advance();
        key.push_back(attr);
      }
      specs.push_back(catalog::AttributeSpec{std::move(attr), type});
      if (At(TokKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    CISQP_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')' after the column list"));
    return fed.catalog.AddRelation(name, server, specs, key).status();
  }

  // joinable A = B
  Status ParseJoinable(ParsedFederation& fed) {
    CISQP_ASSIGN_OR_RETURN(std::string a, ExpectWord("attribute name"));
    CISQP_RETURN_IF_ERROR(Expect(TokKind::kEq, "'='"));
    CISQP_ASSIGN_OR_RETURN(std::string b, ExpectWord("attribute name"));
    return fed.catalog.AddJoinEdge(a, b);
  }

  // grant A, B [on (X, Y), (Z, W)] to Server
  // deny  A, B [on (X, Y), (Z, W)] to Server
  Status ParseRule(ParsedFederation& fed, bool is_grant) {
    std::vector<std::string> attrs;
    while (true) {
      CISQP_ASSIGN_OR_RETURN(std::string attr, ExpectWord("attribute name"));
      // 'on' / 'to' terminate the attribute list.
      if (EqualsIgnoreCase(attr, "on") || EqualsIgnoreCase(attr, "to")) {
        return Err("expected an attribute name, found keyword '" + attr + "'");
      }
      attrs.push_back(std::move(attr));
      if (At(TokKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    std::vector<std::pair<std::string, std::string>> path;
    if (At(TokKind::kWord) && EqualsIgnoreCase(Peek().text, "on")) {
      Advance();
      while (true) {
        CISQP_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'(' before a path pair"));
        CISQP_ASSIGN_OR_RETURN(std::string left, ExpectWord("attribute name"));
        CISQP_RETURN_IF_ERROR(Expect(TokKind::kComma, "',' inside a path pair"));
        CISQP_ASSIGN_OR_RETURN(std::string right, ExpectWord("attribute name"));
        CISQP_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')' after a path pair"));
        path.emplace_back(std::move(left), std::move(right));
        if (At(TokKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (!(At(TokKind::kWord) && EqualsIgnoreCase(Peek().text, "to"))) {
      return Err("expected 'to <server>'");
    }
    Advance();
    CISQP_ASSIGN_OR_RETURN(std::string server, ExpectWord("server name"));
    if (is_grant) {
      return fed.authorizations.Add(fed.catalog, server, attrs, path);
    }
    return fed.denials.Add(fed.catalog, server, attrs, path);
  }

  std::vector<Tok> toks_;
  std::size_t pos_ = 0;
};

std::string_view TypeWord(catalog::ValueType type) {
  switch (type) {
    case catalog::ValueType::kInt64: return "int";
    case catalog::ValueType::kDouble: return "double";
    case catalog::ValueType::kString: return "string";
  }
  return "int";
}

void SerializePath(std::ostringstream& oss, const catalog::Catalog& cat,
                   const authz::JoinPath& path) {
  if (path.empty()) return;
  oss << " on ";
  bool first = true;
  for (const authz::JoinAtom& atom : path.atoms()) {
    if (!first) oss << ", ";
    first = false;
    oss << "(" << cat.attribute(atom.first).name << ", "
        << cat.attribute(atom.second).name << ")";
  }
}

void SerializeAttrs(std::ostringstream& oss, const catalog::Catalog& cat,
                    const IdSet& attrs) {
  bool first = true;
  for (IdSet::value_type a : attrs) {
    if (!first) oss << ", ";
    first = false;
    oss << cat.attribute(a).name;
  }
}

}  // namespace

Result<ParsedFederation> ParseFederation(std::string_view text) {
  CISQP_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(text));
  Parser parser(std::move(toks));
  return parser.Run();
}

std::string SerializeFederation(const catalog::Catalog& cat,
                                const authz::AuthorizationSet* authorizations,
                                const authz::OpenPolicySet* denials) {
  std::ostringstream oss;
  for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
    oss << "server " << cat.server(s).name << ";\n";
  }
  for (catalog::RelationId r = 0; r < cat.relation_count(); ++r) {
    const catalog::RelationDef& rel = cat.relation(r);
    oss << "relation " << rel.name << " @ " << cat.server(rel.server).name << " (";
    for (std::size_t i = 0; i < rel.attributes.size(); ++i) {
      const catalog::AttributeDef& attr = cat.attribute(rel.attributes[i]);
      if (i != 0) oss << ", ";
      oss << attr.name << " " << TypeWord(attr.type);
      const bool is_key = std::find(rel.primary_key.begin(), rel.primary_key.end(),
                                    attr.id) != rel.primary_key.end();
      if (is_key) oss << " key";
    }
    oss << ");\n";
  }
  for (const catalog::JoinEdge& e : cat.join_edges()) {
    oss << "joinable " << cat.attribute(e.left).name << " = "
        << cat.attribute(e.right).name << ";\n";
  }
  if (authorizations != nullptr) {
    for (const authz::Authorization& rule : authorizations->All()) {
      oss << "grant ";
      SerializeAttrs(oss, cat, rule.attributes);
      SerializePath(oss, cat, rule.path);
      oss << " to " << cat.server(rule.server).name << ";\n";
    }
  }
  if (denials != nullptr) {
    for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
      for (const authz::Denial& denial : denials->ForServer(s)) {
        oss << "deny ";
        SerializeAttrs(oss, cat, denial.attributes);
        SerializePath(oss, cat, denial.path);
        oss << " to " << cat.server(s).name << ";\n";
      }
    }
  }
  return oss.str();
}

}  // namespace cisqp::dsl
