#include "serve/front_door.hpp"

#include <utility>

#include "authz/chase.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "planner/plan_search.hpp"
#include "sql/binder.hpp"
#include "sql/signature.hpp"

namespace cisqp::serve {

FrontDoor::FrontDoor(const catalog::Catalog& cat,
                     authz::AuthorizationSet auths,
                     const exec::Cluster& cluster,
                     const plan::StatsCatalog* stats, ServeOptions options)
    : cat_(cat),
      cluster_(cluster),
      stats_(stats),
      options_(options),
      admission_(options.max_concurrent, options.max_queue,
                 options.admission_max_wait_us),
      plan_cache_(options.plan_cache_capacity),
      base_policy_(std::move(auths)) {
  // Cluster::TableOf materializes a relation's empty table lazily and
  // without synchronization; touch every relation now, before concurrent
  // requests exist, so the serving path only ever reads.
  for (std::size_t rel = 0; rel < cat_.relation_count(); ++rel) {
    (void)cluster_.TableOf(static_cast<catalog::RelationId>(rel));
  }
}

Result<std::shared_ptr<const FrontDoor::EpochState>> FrontDoor::State() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (state_ != nullptr) return state_;
  auto st = std::make_shared<EpochState>();
  st->epoch = epoch_.load(std::memory_order_relaxed);
  if (options_.chase_policy) {
    const obs::Span span("serve.chase");
    Result<authz::AuthorizationSet> closed =
        authz::ChaseClosure(cat_, base_policy_, options_.chase);
    if (closed.ok()) {
      st->policy = std::move(*closed);
      // Canonical form (minimized, grants sorted per path): the closure an
      // incremental edit maintains is canonical, so serving from either
      // source answers identically — down to deny-reason tie-breaks.
      st->policy.Canonicalize();
    } else if (closed.status().code() == StatusCode::kResourceExhausted) {
      // The cap tripped: serve against the raw rules. Sound — the chase only
      // adds derivable grants — just stricter than the full closure.
      st->policy = base_policy_;
      st->chase_capped = true;
      CISQP_METRIC_INC("serve.chase_capped");
    } else {
      return closed.status();
    }
  } else {
    st->policy = base_policy_;
  }
  st->memo = std::make_unique<authz::CachingPolicy>(st->policy, &cat_);
  state_ = std::move(st);
  return state_;
}

std::optional<std::string> FrontDoor::CachedSignature(
    const std::string& sql) const {
  const std::lock_guard<std::mutex> lock(sig_mu_);
  const auto it = sig_memo_.find(sql);
  if (it == sig_memo_.end()) {
    CISQP_METRIC_INC("serve.sig_memo.miss");
    return std::nullopt;
  }
  CISQP_METRIC_INC("serve.sig_memo.hit");
  return it->second;
}

void FrontDoor::MemoizeSignature(const std::string& sql,
                                 const std::string& signature) {
  const std::lock_guard<std::mutex> lock(sig_mu_);
  // Several spellings share one signature, so the memo gets more headroom
  // than the plan cache; when full, new spellings simply keep parsing.
  if (sig_memo_.size() >= options_.plan_cache_capacity * 8) return;
  sig_memo_.emplace(sql, signature);
}

Result<Response> FrontDoor::Serve(const Request& request) {
  const std::int64_t start_us = obs::NowMicros();
  requests_.fetch_add(1, std::memory_order_relaxed);
  CISQP_METRIC_INC("serve.requests");

  Response out;
  Result<AdmissionController::Ticket> admit = admission_.Admit(&out.queue_us);
  if (!admit.ok()) return admit.status();
  const AdmissionController::Ticket ticket = std::move(*admit);
  const obs::Span span("serve.request");

  // The signature memo lets a repeated spelling skip parse+bind: the bound
  // spec is only needed on the cold path (signatures are computed from
  // specs, so the first sighting of a spelling parses and memoizes).
  std::optional<std::string> memo_sig = CachedSignature(request.sql);
  std::optional<plan::QuerySpec> spec;
  if (memo_sig.has_value()) {
    out.signature = std::move(*memo_sig);
  } else {
    const std::int64_t parse_start = obs::NowMicros();
    Result<plan::QuerySpec> parsed = [&] {
      const obs::Span parse_span("serve.parse", span);
      return sql::ParseAndBind(cat_, request.sql);
    }();
    if (!parsed.ok()) return parsed.status();
    out.parse_us = obs::NowMicros() - parse_start;
    out.signature = sql::CanonicalQuerySignature(*parsed);
    MemoizeSignature(request.sql, out.signature);
    spec = std::move(*parsed);
  }

  // Feasibility depends on who receives the result, so the requestor is
  // part of the cache key alongside the signature.
  std::string key = out.signature;
  key += "|rq";
  key += request.requestor.has_value() ? std::to_string(*request.requestor)
                                       : std::string("-");

  Result<std::shared_ptr<const EpochState>> state_r = State();
  if (!state_r.ok()) return state_r.status();
  const std::shared_ptr<const EpochState> state = std::move(*state_r);
  out.policy_epoch = state->epoch;

  const std::int64_t plan_start = obs::NowMicros();
  std::optional<CachedPlanEntry> entry = plan_cache_.Lookup(key, state->epoch);
  out.plan_cache_hit = entry.has_value();
  if (!entry.has_value()) {
    if (!spec.has_value()) {
      // Memoized spelling but no live plan for this epoch — parse after all.
      const std::int64_t parse_start = obs::NowMicros();
      Result<plan::QuerySpec> parsed = [&] {
        const obs::Span parse_span("serve.parse", span);
        return sql::ParseAndBind(cat_, request.sql);
      }();
      if (!parsed.ok()) return parsed.status();
      out.parse_us = obs::NowMicros() - parse_start;
      spec = std::move(*parsed);
    }
    obs::Span plan_span("serve.plan", span);
    plan_span.AddAttribute("cached", "false");
    planner::FeasiblePlanSearch search(cat_, *state->memo, stats_, nullptr);
    planner::PlanSearchOptions popt;
    popt.max_orders = options_.max_orders;
    popt.threads = options_.planning_threads;
    popt.planner_options.allow_third_party = options_.allow_third_party;
    popt.planner_options.requestor = request.requestor;
    Result<planner::PlanSearchResult> found = search.Search(*spec, popt);
    CachedPlanEntry fresh;
    fresh.epoch = state->epoch;
    for (const catalog::RelationId rel : spec->Relations()) {
      fresh.relations.Insert(rel);
    }
    if (found.ok()) {
      fresh.handle =
          std::make_shared<const planner::PlanSearchResult>(std::move(*found));
    } else if (found.status().code() == StatusCode::kInfeasible) {
      // Negative caching: the typed verdict is the answer, and repeating it
      // from the cache reproduces the cold message byte-for-byte.
      fresh.verdict = found.status();
    } else {
      return found.status();  // internal/transient — never cached
    }
    plan_cache_.Insert(key, fresh);
    entry = std::move(fresh);
  } else {
    obs::Span plan_span("serve.plan", span);
    plan_span.AddAttribute("cached", "true");
  }
  out.plan_us = obs::NowMicros() - plan_start;
  CISQP_METRIC_OBSERVE(
      out.plan_cache_hit ? "serve.plan_us.cached" : "serve.plan_us.cold",
      static_cast<double>(out.plan_us));
  if (!entry->verdict.ok()) return entry->verdict;

  const std::int64_t exec_start = obs::NowMicros();
  exec::ExecutionOptions eopt;
  eopt.enforce_releases =
      request.enforce_releases.value_or(options_.enforce_releases);
  eopt.requestor = request.requestor;
  eopt.profile = request.profile;
  eopt.pool = options_.exec_pool;
  eopt.threads = options_.exec_threads;
  eopt.morsel = options_.morsel;
  const exec::DistributedExecutor executor(cluster_, *state->memo);
  Result<exec::ExecutionResult> run = [&] {
    const obs::Span exec_span("serve.exec", span);
    return executor.Execute(entry->handle->plan,
                            entry->handle->safe_plan.assignment, eopt);
  }();
  if (!run.ok()) return run.status();
  out.exec_us = obs::NowMicros() - exec_start;

  out.table = std::move(run->table);
  out.result_server = run->result_server;
  out.network = std::move(run->network);
  out.estimated_bytes = entry->handle->estimated_bytes;
  out.total_us = obs::NowMicros() - start_us;
  CISQP_METRIC_OBSERVE(
      out.plan_cache_hit ? "serve.latency_us.cached" : "serve.latency_us.cold",
      static_cast<double>(out.total_us));
  return out;
}

void FrontDoor::RetireMemoCountersLocked() {
  if (state_ != nullptr && state_->memo != nullptr) {
    retired_canview_hits_ += state_->memo->hits();
    retired_canview_misses_ += state_->memo->misses();
  }
}

void FrontDoor::SetPolicy(authz::AuthorizationSet auths) {
  const std::lock_guard<std::mutex> lock(mu_);
  base_policy_ = std::move(auths);
  inc_.reset();  // wholesale replacement: rebuild the closure from scratch
  RetireMemoCountersLocked();
  state_.reset();
  const std::uint64_t next =
      epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  plan_cache_.InvalidateBefore(next);
  CISQP_METRIC_INC("serve.policy_epoch_bumps");
}

Result<authz::ClosureDelta> FrontDoor::AddRule(const authz::Authorization& auth) {
  return EditPolicy(auth, /*grant=*/true);
}

Result<authz::ClosureDelta> FrontDoor::RevokeRule(
    const authz::Authorization& auth) {
  return EditPolicy(auth, /*grant=*/false);
}

Result<authz::ClosureDelta> FrontDoor::EditPolicy(
    const authz::Authorization& auth, bool grant) {
  const std::lock_guard<std::mutex> lock(mu_);
  const obs::Span span(grant ? "serve.policy_grant" : "serve.policy_revoke");
  authz::ClosureDelta delta;
  bool incremental = false;
  const bool capped = state_ != nullptr && state_->chase_capped;
  if (options_.chase_policy && !capped) {
    if (inc_ == nullptr) {
      Result<authz::IncrementalClosure> built =
          authz::IncrementalClosure::Build(cat_, base_policy_, options_.chase);
      if (built.ok()) {
        inc_ = std::make_unique<authz::IncrementalClosure>(std::move(*built));
      } else if (built.status().code() != StatusCode::kResourceExhausted) {
        return built.status();
      }
      // Cap trip: leave inc_ null and take the full-sweep path below —
      // serving already degrades to the raw rules in State().
    }
  } else if (options_.chase_policy) {
    // Capped state serves raw rules; keep doing so via the full path.
    inc_.reset();
  }
  if (inc_ != nullptr) {
    Result<authz::ClosureDelta> edited =
        grant ? inc_->AddRule(auth) : inc_->RevokeRule(auth);
    if (edited.ok()) {
      delta = std::move(*edited);
      incremental = true;
      // Mirror the edit so base_policy_ stays equal to inc_->base() (the
      // same validation just passed inside the incremental closure).
      const Status mirrored = grant ? base_policy_.Add(cat_, auth)
                                    : base_policy_.Remove(cat_, auth);
      if (!mirrored.ok()) {
        // The identical validation passed inside the incremental closure,
        // so a mirror refusal means inc_->base() now holds the edit while
        // base_policy_ does not — the two were already out of step. Discard
        // the divergent closure and the published state so nothing ever
        // serves the half-applied edit; the edit is reported failed and
        // base_policy_ (without it) stays the truth State() rebuilds from.
        inc_.reset();
        RetireMemoCountersLocked();
        state_.reset();
        plan_cache_.InvalidateBefore(
            epoch_.fetch_add(1, std::memory_order_relaxed) + 1);
        return mirrored;
      }
    } else if (edited.status().code() == StatusCode::kResourceExhausted) {
      // The chase cap tripped mid-edit: the incremental pools are
      // inconsistent, but the base edit itself was validated and applied.
      // Discard the maintained closure, apply the edit to the raw rules,
      // and fall back to a full sweep; State() re-detects the cap lazily.
      inc_.reset();
      const Status applied = grant ? base_policy_.Add(cat_, auth)
                                   : base_policy_.Remove(cat_, auth);
      if (!applied.ok()) return applied;
      delta.full = true;
      delta.relations = authz::RuleRelations(cat_, auth);
      delta.servers.Insert(auth.server);
      if (grant) delta.added_rules = 1; else delta.removed_rules = 1;
    } else {
      return edited.status();  // validation failure: nothing changed
    }
  } else {
    // Chase off (or capped): the served policy IS the base rule set, so the
    // only rule that changes is the edited one. Selective retention is
    // still sound — unless the server's rule set transitions between empty
    // and non-empty, which flips kNoRulesForServer denials for every
    // profile at that server.
    const bool was_empty = base_policy_.ForServer(auth.server).empty();
    const Status applied = grant ? base_policy_.Add(cat_, auth)
                                 : base_policy_.Remove(cat_, auth);
    if (!applied.ok()) return applied;
    const bool is_empty = base_policy_.ForServer(auth.server).empty();
    delta.relations = authz::RuleRelations(cat_, auth);
    delta.servers.Insert(auth.server);
    // With the chase on we only reach here capped (state or build), where a
    // full sweep is the only sound answer; with it off, selective retention
    // holds unless the server's rule set transitioned empty <-> non-empty.
    delta.full = options_.chase_policy || (was_empty != is_empty);
    if (grant) delta.added_rules = 1; else delta.removed_rules = 1;
  }

  RetireMemoCountersLocked();
  const std::uint64_t next =
      epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  CISQP_METRIC_INC("serve.policy_epoch_bumps");
  CISQP_METRIC_INC(grant ? "serve.policy_grants" : "serve.policy_revokes");
  if (delta.full || state_ == nullptr) {
    // Full sweep: no retained entries, closure (re)built lazily by State().
    state_.reset();
    plan_cache_.InvalidateBefore(next);
    return delta;
  }
  // Publish the new epoch eagerly from the maintained closure (or the raw
  // rules when the chase is off) and re-stamp every cache entry whose
  // relations are disjoint from the delta: no verdict it depends on changed.
  auto st = std::make_shared<EpochState>();
  st->epoch = next;
  st->policy = incremental ? inc_->closed() : base_policy_;
  st->memo = std::make_unique<authz::CachingPolicy>(st->policy, &cat_);
  if (state_->memo != nullptr) {
    st->memo->RetainFrom(*state_->memo, delta.relations);
  }
  state_ = std::move(st);
  plan_cache_.AdvanceEpoch(next, delta.relations);
  return delta;
}

void FrontDoor::ClearCaches() {
  const std::lock_guard<std::mutex> lock(mu_);
  RetireMemoCountersLocked();
  state_.reset();  // drops the chased closure and the CanView memo
  plan_cache_.Clear();
  const std::lock_guard<std::mutex> sig_lock(sig_mu_);
  sig_memo_.clear();
}

FrontDoorStats FrontDoor::Stats() const {
  FrontDoorStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.admitted = admission_.admitted();
  stats.rejected = admission_.rejected();
  stats.plan_cache_hits = plan_cache_.hits();
  stats.plan_cache_misses = plan_cache_.misses();
  stats.plan_cache_stale_evictions = plan_cache_.stale_evictions();
  stats.plan_cache_retained = plan_cache_.retained();
  stats.plan_cache_size = plan_cache_.size();
  const std::lock_guard<std::mutex> lock(mu_);
  stats.canview_hits = retired_canview_hits_;
  stats.canview_misses = retired_canview_misses_;
  if (state_ != nullptr && state_->memo != nullptr) {
    stats.canview_hits += state_->memo->hits();
    stats.canview_misses += state_->memo->misses();
    stats.canview_memo_size = state_->memo->size();
  }
  return stats;
}

}  // namespace cisqp::serve
