// Status / Result: recoverable-error plumbing for the cisqp library.
//
// The library distinguishes two failure classes, following the C++ Core
// Guidelines (E.2, E.3, I.10):
//   * programmer errors (violated preconditions, broken invariants) are
//     reported with CISQP_CHECK / exceptions and are not meant to be caught;
//   * recoverable, data-dependent failures (a query that cannot be parsed, a
//     plan with no safe assignment, an unauthorized release attempted at run
//     time) travel as `Status` / `Result<T>` values so callers can branch on
//     them without exception control flow.
//
// `Status` is a small value type: a code plus a human-readable message.
// `Result<T>` is either a value or a non-OK `Status` (std::expected is C++23;
// this is the C++20 equivalent the library standardizes on).
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cisqp {

/// Machine-readable failure category carried by `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad SQL, unknown name, bad config)
  kNotFound,          ///< a looked-up entity does not exist
  kAlreadyExists,     ///< an entity with that name/id is already registered
  kFailedPrecondition,///< operation not valid in the current state
  kUnauthorized,      ///< a data release is not covered by any authorization
  kUnavailable,       ///< a server/link failure the execution could not recover from
  kInfeasible,        ///< no safe executor assignment exists (Problem 4.1)
  kResourceExhausted, ///< a configured cap (chase derivations, rows) was hit
  kInternal,          ///< invariant violation escaped as a recoverable error
};

/// Stable lower-case name for a code ("ok", "invalid_argument", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// Value type describing the outcome of an operation.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  /// An OK code with a message is allowed but the message is ignored.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Convenience factories mirroring the StatusCode enumerators.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnauthorizedError(std::string message);
Status UnavailableError(std::string message);
Status InfeasibleError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);

/// Exception thrown when a `Result` is dereferenced in error state or a
/// CISQP_CHECK fails: a programmer error, not part of normal control flow.
class BadStatus : public std::logic_error {
 public:
  explicit BadStatus(const Status& status)
      : std::logic_error(status.ToString()), status_(status) {}
  const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Either a `T` or a non-OK `Status`. The moral equivalent of
/// `std::expected<T, Status>` for C++20.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return MakeThing();`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from a non-OK status: `return InvalidArgumentError(...)`.
  /// Constructing from an OK status is a programmer error.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (error().ok()) throw BadStatus(InternalError("Result built from OK status"));
  }

  bool ok() const noexcept { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const noexcept { return ok(); }

  /// The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  /// Value accessors. Dereferencing an error Result throws BadStatus.
  T& value() & { EnsureOk(); return std::get<T>(rep_); }
  const T& value() const& { EnsureOk(); return std::get<T>(rep_); }
  T&& value() && { EnsureOk(); return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? std::get<T>(rep_) : std::move(fallback); }

 private:
  const Status& error() const { return std::get<Status>(rep_); }
  void EnsureOk() const {
    if (!ok()) throw BadStatus(error());
  }

  std::variant<T, Status> rep_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace internal

/// Precondition/invariant check that is active in all build modes.
/// Failure indicates a bug in the caller or the library, never bad user data.
#define CISQP_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::cisqp::internal::CheckFailed(__FILE__, __LINE__, #expr, "");       \
    }                                                                      \
  } while (false)

#define CISQP_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream cisqp_check_oss;                                  \
      cisqp_check_oss << msg; /* NOLINT */                                 \
      ::cisqp::internal::CheckFailed(__FILE__, __LINE__, #expr,            \
                                     cisqp_check_oss.str());               \
    }                                                                      \
  } while (false)

/// Propagates a non-OK Status from an expression producing Status.
#define CISQP_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::cisqp::Status cisqp_status__ = (expr);          \
    if (!cisqp_status__.ok()) return cisqp_status__;  \
  } while (false)

/// Evaluates a Result-returning expression; on error returns its status,
/// otherwise assigns the value to `lhs`.
#define CISQP_ASSIGN_OR_RETURN(lhs, expr)            \
  auto CISQP_CONCAT_(cisqp_result__, __LINE__) = (expr);              \
  if (!CISQP_CONCAT_(cisqp_result__, __LINE__).ok())                  \
    return CISQP_CONCAT_(cisqp_result__, __LINE__).status();          \
  lhs = std::move(CISQP_CONCAT_(cisqp_result__, __LINE__)).value()

#define CISQP_CONCAT_INNER_(a, b) a##b
#define CISQP_CONCAT_(a, b) CISQP_CONCAT_INNER_(a, b)

}  // namespace cisqp
