#include "sql/lexer.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace cisqp::sql {
namespace {

bool IsKeyword(std::string_view upper) {
  return upper == "SELECT" || upper == "DISTINCT" || upper == "FROM" ||
         upper == "JOIN" || upper == "ON" || upper == "WHERE" ||
         upper == "AND" || upper == "EXPLAIN" || upper == "ANALYZE";
}

std::string ToUpperAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::string_view TokenKindName(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEnd: return "end of input";
  }
  return "unknown";
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) ++i;
      const std::string_view word = text.substr(start, i - start);
      std::string upper = ToUpperAscii(word);
      if (IsKeyword(upper)) {
        out.push_back(Token{TokenKind::kKeyword, std::move(upper), start});
      } else {
        out.push_back(Token{TokenKind::kIdentifier, std::string(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i + 1 < n && text[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      out.push_back(Token{is_float ? TokenKind::kFloat : TokenKind::kInteger,
                          std::string(text.substr(start, i - start)), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string literal;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {  // escaped quote ''
            literal += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        literal += text[i];
        ++i;
      }
      if (!closed) {
        return InvalidArgumentError("unterminated string literal at offset " +
                                    std::to_string(start));
      }
      out.push_back(Token{TokenKind::kString, std::move(literal), start});
      continue;
    }
    const auto push1 = [&](TokenKind kind) {
      out.push_back(Token{kind, std::string(1, c), start});
      ++i;
    };
    switch (c) {
      case ',': push1(TokenKind::kComma); break;
      case '.': push1(TokenKind::kDot); break;
      case '*': push1(TokenKind::kStar); break;
      case '(': push1(TokenKind::kLParen); break;
      case ')': push1(TokenKind::kRParen); break;
      case '=': push1(TokenKind::kEq); break;
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          out.push_back(Token{TokenKind::kLe, "<=", start});
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          out.push_back(Token{TokenKind::kNe, "<>", start});
          i += 2;
        } else {
          push1(TokenKind::kLt);
        }
        break;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          out.push_back(Token{TokenKind::kGe, ">=", start});
          i += 2;
        } else {
          push1(TokenKind::kGt);
        }
        break;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          out.push_back(Token{TokenKind::kNe, "!=", start});
          i += 2;
        } else {
          return InvalidArgumentError("unexpected '!' at offset " + std::to_string(start));
        }
        break;
      default:
        return InvalidArgumentError("unexpected character '" + std::string(1, c) +
                                    "' at offset " + std::to_string(start));
    }
  }
  out.push_back(Token{TokenKind::kEnd, "", n});
  return out;
}

}  // namespace cisqp::sql
