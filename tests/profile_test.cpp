// Tests for relation profiles (paper Def. 3.2, Fig. 4) and join paths
// (Def. 2.1), including the worked profile examples of §3.2.
#include <gtest/gtest.h>

#include "authz/profile.hpp"
#include "test_util.hpp"

namespace cisqp::authz {
namespace {

using cisqp::testing::Attr;
using cisqp::testing::Attrs;
using cisqp::testing::Path;
using cisqp::testing::Relation;

class ProfileTest : public ::testing::Test {
 protected:
  catalog::Catalog cat_ = workload::MedicalScenario::BuildCatalog();
};

TEST_F(ProfileTest, JoinAtomNormalizesOrder) {
  const auto a = Attr(cat_, "Holder");
  const auto b = Attr(cat_, "Patient");
  EXPECT_EQ(JoinAtom::Make(a, b), JoinAtom::Make(b, a));
  EXPECT_THROW(JoinAtom::Make(a, a), BadStatus);
}

TEST_F(ProfileTest, JoinPathIsCanonical) {
  // The paper writes the same condition both ways (Fig. 3 auths 2 and 5);
  // both spellings are one canonical path.
  const JoinPath p1 = Path(cat_, {{"Holder", "Patient"}});
  const JoinPath p2 = Path(cat_, {{"Patient", "Holder"}});
  EXPECT_EQ(p1, p2);

  // Order and duplicates of atoms do not matter.
  const JoinPath q1 = Path(cat_, {{"Holder", "Patient"}, {"Disease", "Illness"}});
  const JoinPath q2 = Path(cat_, {{"Illness", "Disease"}, {"Holder", "Patient"},
                                  {"Patient", "Holder"}});
  EXPECT_EQ(q1, q2);
  EXPECT_EQ(q1.size(), 2u);
}

TEST_F(ProfileTest, JoinPathSetOperations) {
  const JoinPath a = Path(cat_, {{"Holder", "Citizen"}});
  const JoinPath b = Path(cat_, {{"Citizen", "Patient"}});
  const JoinPath ab = JoinPath::Union(a, b);
  EXPECT_EQ(ab.size(), 2u);
  EXPECT_TRUE(a.IsSubsetOf(ab));
  EXPECT_FALSE(ab.IsSubsetOf(a));
  EXPECT_TRUE(JoinPath().IsSubsetOf(a));
  EXPECT_TRUE(ab.Contains(JoinAtom::Make(Attr(cat_, "Citizen"), Attr(cat_, "Holder"))));
}

TEST_F(ProfileTest, JoinPathAttributesAndRelations) {
  const JoinPath p = Path(cat_, {{"Holder", "Patient"}, {"Disease", "Illness"}});
  EXPECT_EQ(p.Attributes(),
            Attrs(cat_, {"Holder", "Patient", "Disease", "Illness"}));
  IdSet rels;
  rels.Insert(Relation(cat_, "Insurance"));
  rels.Insert(Relation(cat_, "Hospital"));
  rels.Insert(Relation(cat_, "Disease_list"));
  EXPECT_EQ(p.Relations(cat_), rels);
}

TEST_F(ProfileTest, BaseRelationProfile) {
  // Def. 3.2: base relation profile is [schema, ∅, ∅].
  const Profile p = Profile::OfBaseRelation(cat_, Relation(cat_, "Hospital"));
  EXPECT_EQ(p.pi, Attrs(cat_, {"Patient", "Disease", "Physician"}));
  EXPECT_TRUE(p.join.empty());
  EXPECT_TRUE(p.sigma.empty());
}

TEST_F(ProfileTest, ProjectionRule) {
  // Fig. 4 row 1: π keeps join and sigma, narrows pi.
  Profile base = Profile::OfBaseRelation(cat_, Relation(cat_, "Hospital"));
  base.sigma = Attrs(cat_, {"Disease"});
  const Profile p = Profile::Project(base, Attrs(cat_, {"Patient"}));
  EXPECT_EQ(p.pi, Attrs(cat_, {"Patient"}));
  EXPECT_EQ(p.sigma, Attrs(cat_, {"Disease"}));
  EXPECT_TRUE(p.join.empty());
}

TEST_F(ProfileTest, SelectionRule) {
  // Fig. 4 row 2: σ keeps pi and join, widens sigma.
  const Profile base = Profile::OfBaseRelation(cat_, Relation(cat_, "Hospital"));
  const Profile p = Profile::Select(base, Attrs(cat_, {"Disease"}));
  EXPECT_EQ(p.pi, base.pi);
  EXPECT_EQ(p.sigma, Attrs(cat_, {"Disease"}));
  const Profile p2 = Profile::Select(p, Attrs(cat_, {"Physician"}));
  EXPECT_EQ(p2.sigma, Attrs(cat_, {"Disease", "Physician"}));
}

TEST_F(ProfileTest, JoinRule) {
  // Fig. 4 row 3: componentwise union plus the new condition.
  Profile ins = Profile::OfBaseRelation(cat_, Relation(cat_, "Insurance"));
  ins.sigma = Attrs(cat_, {"Plan"});
  const Profile reg = Profile::OfBaseRelation(cat_, Relation(cat_, "Nat_registry"));
  const Profile joined =
      Profile::Join(ins, reg, Path(cat_, {{"Holder", "Citizen"}}));
  EXPECT_EQ(joined.pi, Attrs(cat_, {"Holder", "Plan", "Citizen", "HealthAid"}));
  EXPECT_EQ(joined.join, Path(cat_, {{"Holder", "Citizen"}}));
  EXPECT_EQ(joined.sigma, Attrs(cat_, {"Plan"}));
}

TEST_F(ProfileTest, JoinRuleAccumulatesPaths) {
  const Profile ins = Profile::OfBaseRelation(cat_, Relation(cat_, "Insurance"));
  const Profile reg = Profile::OfBaseRelation(cat_, Relation(cat_, "Nat_registry"));
  const Profile hos = Profile::OfBaseRelation(cat_, Relation(cat_, "Hospital"));
  const Profile step1 = Profile::Join(ins, reg, Path(cat_, {{"Holder", "Citizen"}}));
  const Profile step2 =
      Profile::Join(step1, hos, Path(cat_, {{"Citizen", "Patient"}}));
  EXPECT_EQ(step2.join,
            Path(cat_, {{"Holder", "Citizen"}, {"Citizen", "Patient"}}));
}

TEST_F(ProfileTest, Section32ExampleProfile) {
  // §3.2: "SELECT Illness, Treatment FROM Disease_list JOIN Hospital ON
  // Illness = Disease" has profile [{Illness, Treatment}, {(Illness,
  // Disease)}, ∅].
  const Profile dis = Profile::OfBaseRelation(cat_, Relation(cat_, "Disease_list"));
  const Profile hos = Profile::OfBaseRelation(cat_, Relation(cat_, "Hospital"));
  const Profile joined =
      Profile::Join(dis, hos, Path(cat_, {{"Illness", "Disease"}}));
  const Profile result =
      Profile::Project(joined, Attrs(cat_, {"Illness", "Treatment"}));
  EXPECT_EQ(result.pi, Attrs(cat_, {"Illness", "Treatment"}));
  EXPECT_EQ(result.join, Path(cat_, {{"Illness", "Disease"}}));
  EXPECT_TRUE(result.sigma.empty());
}

TEST_F(ProfileTest, VisibleAttributesUnionsPiAndSigma) {
  Profile p = Profile::OfBaseRelation(cat_, Relation(cat_, "Insurance"));
  p = Profile::Project(p, Attrs(cat_, {"Plan"}));
  p.sigma = Attrs(cat_, {"Holder"});
  EXPECT_EQ(p.VisibleAttributes(), Attrs(cat_, {"Holder", "Plan"}));
}

TEST_F(ProfileTest, ProjectOutsideSchemaIsProgrammerError) {
  const Profile base = Profile::OfBaseRelation(cat_, Relation(cat_, "Insurance"));
  EXPECT_THROW(Profile::Project(base, Attrs(cat_, {"Citizen"})), BadStatus);
  EXPECT_THROW(Profile::Select(base, Attrs(cat_, {"Citizen"})), BadStatus);
}

TEST_F(ProfileTest, ToStringShowsAllComponents) {
  Profile p = Profile::OfBaseRelation(cat_, Relation(cat_, "Insurance"));
  p.join = Path(cat_, {{"Holder", "Citizen"}});
  p.sigma = Attrs(cat_, {"Plan"});
  const std::string s = p.ToString(cat_);
  EXPECT_NE(s.find("Holder"), std::string::npos);
  EXPECT_NE(s.find("Citizen"), std::string::npos);
  EXPECT_NE(s.find("Plan"), std::string::npos);
  EXPECT_EQ(Profile().ToString(cat_), "[∅, ∅, ∅]");
}

TEST_F(ProfileTest, EqualityIsComponentwise) {
  const Profile a = Profile::OfBaseRelation(cat_, Relation(cat_, "Insurance"));
  Profile b = a;
  EXPECT_EQ(a, b);
  b.sigma = Attrs(cat_, {"Plan"});
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace cisqp::authz
