// Hash utilities: combine and range hashing for library value types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cisqp {

/// Mixes `value`'s hash into `seed` (boost::hash_combine-style, 64-bit).
template <typename T>
void HashCombine(std::size_t& seed, const T& value) {
  std::size_t h = std::hash<T>{}(value);
  seed ^= h + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4);
}

/// Hashes a range of hashable elements, order-sensitively.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0xcbf29ce484222325ull;
  for (; first != last; ++first) HashCombine(seed, *first);
  return seed;
}

}  // namespace cisqp
