// AuthzAuditLog: a structured, append-only record of authorization decisions.
//
// The paper's guarantees live or die on individual CanView verdicts — a
// candidate the planner rejected, a release the verifier flagged, a shipment
// the executor refused. When the audit log is enabled, every such decision
// appends one entry naming the check site, the plan node, the candidate
// server, the view profile that was checked, and either the covering
// authorization (allow) or the first failed condition — join-path mismatch
// vs. attribute coverage (deny). A denied plan or a tripped runtime
// enforcement is then explainable line by line.
//
// Entries carry pre-rendered catalog names (the recording sites all hold the
// catalog), keeping this module dependency-free below `common` and the
// rendering cost strictly inside the enabled path. Disabled by default;
// recording is one bool check when off and folds away under
// -DCISQP_OBS_DISABLED.
//
// Appends are thread-safe (DESIGN.md §9): check sites running on pool
// workers — e.g. the per-order SafePlanner probes of the parallel plan
// search — serialize on one mutex. Entry *order* is execution order, which
// under parallel planning is nondeterministic across runs; the entry set is
// not. The readers are for quiescent code.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace cisqp::obs {

/// Which layer performed the authorization check.
enum class AuditSite : std::uint8_t {
  kPlanner,    ///< SafePlanner candidate probe (Fig. 6 Find_candidates)
  kVerifier,   ///< independent assignment verification (Def. 3.3 per release)
  kExecutor,   ///< runtime release enforcement on a physical shipment
  kRequestor,  ///< final-result delivery check for the querying party
  kFailover,   ///< mid-recovery replan probe over the surviving servers
};

std::string_view AuditSiteName(AuditSite site) noexcept;

/// One authorization decision.
struct AuditEntry {
  bool allowed = false;
  AuditSite site = AuditSite::kPlanner;
  int node_id = -1;       ///< plan node the check belongs to, -1 if none
  std::string server;     ///< candidate recipient (catalog name)
  std::string profile;    ///< the view profile checked, rendered
  std::string matched;    ///< allow: the covering authorization, rendered
  std::string reason;     ///< deny: the first failed condition
  std::string detail;     ///< role / flow description from the check site

  /// "ALLOW [executor] n2 -> S_N: profile ... via rule ..." one-liner.
  std::string ToString() const;
};

/// Process-wide append-only decision log.
class AuthzAuditLog {
 public:
  static AuthzAuditLog& Get();

  /// Starts a fresh recording.
  void Enable();
  void Disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return ObsEnabled() && enabled_.load(std::memory_order_relaxed);
  }
  void Clear();

  void Record(AuditEntry entry);

  /// Read-only view; call only while no thread is recording.
  const std::vector<AuditEntry>& entries() const noexcept { return entries_; }
  std::size_t allowed_count() const noexcept { return allowed_; }
  std::size_t denied_count() const noexcept { return denied_; }

  /// One entry per line, execution order.
  std::string ToText() const;
  /// {"entries":[{...}]}.
  std::string ToJson() const;

 private:
  static constexpr bool ObsEnabled() noexcept { return kObsCompiledIn; }

  std::atomic<bool> enabled_{false};
  std::mutex mu_;  ///< guards entries_ and the counts
  std::size_t allowed_ = 0;
  std::size_t denied_ = 0;
  std::vector<AuditEntry> entries_;
};

}  // namespace cisqp::obs
