// IncrementalClosure: delta maintenance of the chase closure under
// grant/revoke edits (DESIGN.md §16).
//
// The batch chase (chase.cpp) recomputes every server's fixpoint from
// scratch on any policy change. This class keeps the per-server semi-naïve
// rule pools alive between edits and updates them as deltas:
//
//   grant   the new rule is appended to its server's persistent pool and
//           the semi-naïve loop resumes with the pool tail as the delta —
//           exactly the round the batch chase would have run had the rule
//           been present from the start (closure confluence: the minimized
//           fixpoint is insertion-order independent), paying only for the
//           pairs the new rule introduces. A grant subsumed by an existing
//           rule is a no-op on the closure.
//   revoke  derivations are not counted individually (the pool's novelty
//           check skips subsumed derivations, which makes per-rule
//           derivation counts ill-defined), so a revoke rederives the one
//           affected server from its surviving base rules. Other servers'
//           pools are untouched — the paper's derivation never crosses
//           servers — so the cost is 1/|servers| of a full rechase before
//           the delta round's savings.
//
// Every successful edit returns a ClosureDelta naming the relations whose
// authorized profiles may have changed. The summary is intentionally the
// *edited rule's* relations, not the diffed rules': every closure rule a
// grant or revoke of `r` can add or remove derives through `r`, so its join
// path mentions (at least) every relation of `r` — a cached verdict whose
// relation set is disjoint from relations(r) cannot have changed, which is
// what lets the serving layer re-stamp disjoint cache entries instead of
// sweeping them (front_door.cpp). The one exception is a server whose rule
// set transitions between empty and non-empty: that flips the
// kNoRulesForServer deny reason for *every* profile probed at that server,
// so the delta degrades to `full` and the caches sweep as before.
//
// closed() is maintained in canonical form (minimized, grants sorted within
// each path) and equals Canonicalize(ChaseClosure(base)) after every edit —
// the invariant the policy-edit fuzz arm checks against the from-scratch
// oracle, byte for byte.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "authz/authorization.hpp"
#include "authz/chase.hpp"
#include "authz/chase_core.hpp"
#include "catalog/catalog.hpp"

namespace cisqp::authz {

/// What one policy edit changed, summarized for cache invalidation.
struct ClosureDelta {
  /// Selective retention is unsound for this edit (a server's rule set
  /// appeared or vanished); every epoch-stamped cache entry must go.
  bool full = false;
  /// Relations whose authorized profiles may have changed: any cached
  /// verdict/plan touching none of them is unaffected by the edit.
  IdSet relations;
  /// Servers whose canonical closure changed.
  IdSet servers;
  std::size_t added_rules = 0;    ///< canonical closure rules added
  std::size_t removed_rules = 0;  ///< canonical closure rules removed

  /// False when the edit provably changed no closure rule (e.g. a grant
  /// already subsumed, or a revoke of a still-derivable rule).
  bool changed() const noexcept {
    return full || added_rules != 0 || removed_rules != 0;
  }
};

class IncrementalClosure {
 public:
  /// Chases `base` once (batch semantics, including the derived-rules cap:
  /// kResourceExhausted when it trips) and retains the per-server pools for
  /// later edits. `cat` must outlive the object.
  static Result<IncrementalClosure> Build(const catalog::Catalog& cat,
                                          const AuthorizationSet& base,
                                          const ChaseOptions& options = {});

  /// The maintained base policy (every applied edit, no derivations).
  const AuthorizationSet& base() const noexcept { return base_; }

  /// The canonical chased closure of base(): minimized, grants sorted
  /// within each (server, path) bucket.
  const AuthorizationSet& closed() const noexcept { return closed_; }

  /// Chase work accumulated across Build and every edit, for reporting
  /// only. The ChaseOptions::max_derived_rules cap is NOT applied to this
  /// lifetime total: it bounds the *current closure* — each per-server
  /// chase run plus the sum of per-server derived counts, the same budget
  /// the batch chase enforces — so an arbitrarily long edit history whose
  /// every intermediate closure fits under the cap never trips it.
  const ChaseStats& stats() const noexcept { return stats_; }

  /// Grants `auth`. Validation failures (kInvalidArgument, kNotFound,
  /// kAlreadyExists) leave the object untouched and usable; a
  /// kResourceExhausted cap trip leaves it inconsistent — discard it and
  /// fall back to the batch chase.
  Result<ClosureDelta> AddRule(const Authorization& auth);

  /// Revokes exactly `auth` from the base policy (kNotFound when absent;
  /// the object stays usable). Rederives the edited server only.
  Result<ClosureDelta> RevokeRule(const Authorization& auth);

 private:
  /// Minimized per-path grants of one server, sorted within each path —
  /// the canonical form diffs and closed() are built from.
  using CanonicalRules = std::map<JoinPath, std::vector<IdSet>>;

  IncrementalClosure(const catalog::Catalog& cat, ChaseOptions options);

  static CanonicalRules Canonicalize(const chase_internal::RulePool& pool);

  /// Replaces server `s`'s canonical rules with `next`, rebuilds closed(),
  /// and fills the delta bookkeeping (counts, transition, servers).
  Status Publish(catalog::ServerId server, CanonicalRules next,
                 ClosureDelta& delta);

  /// Rechases one server from its current base rules into a fresh pool,
  /// updating derived_[server] on success.
  Result<chase_internal::RulePool> RechaseServer(catalog::ServerId server);

  /// kResourceExhausted when the per-server derived counts sum past
  /// max_derived_rules — the batch chase's whole-closure budget.
  Status CheckClosureCap() const;

  const catalog::Catalog* cat_;
  ChaseOptions options_;
  std::unique_ptr<chase_internal::EdgeIndex> index_;
  AuthorizationSet base_;
  std::vector<chase_internal::RulePool> pools_;  ///< per server, persistent
  std::vector<CanonicalRules> canon_;            ///< per server, canonical
  /// Rules each server's pool holds beyond its base seeds; the cap applies
  /// to their sum (the closure's size), never to lifetime chase work.
  std::vector<std::size_t> derived_;
  AuthorizationSet closed_;
  ChaseStats stats_;  ///< lifetime totals, reporting only (see stats())
};

/// The relations an authorization mentions: its join path's relations plus
/// (for an empty path) the owning relation of its attributes.
IdSet RuleRelations(const catalog::Catalog& cat, const Authorization& auth);

}  // namespace cisqp::authz
