#include "authz/canview_cache.hpp"

#include "obs/metrics.hpp"

namespace cisqp::authz {

std::string ProfileCacheKey(const Profile& profile, catalog::ServerId server) {
  // Ids rendered with unambiguous separators: IdSet and JoinPath are both
  // canonically sorted, so equal profiles encode identically and distinct
  // profiles cannot collide (every component is delimited).
  std::string key = "v" + std::to_string(server) + "|p";
  for (const IdSet::value_type id : profile.pi) {
    key += std::to_string(id);
    key += ",";
  }
  key += "|j";
  for (const JoinAtom& atom : profile.join.atoms()) {
    key += std::to_string(atom.first);
    key += "-";
    key += std::to_string(atom.second);
    key += ",";
  }
  key += "|s";
  for (const IdSet::value_type id : profile.sigma) {
    key += std::to_string(id);
    key += ",";
  }
  return key;
}

CanViewExplanation CachingPolicy::Explain(const Profile& profile,
                                          catalog::ServerId server) const {
  const std::string key = ProfileCacheKey(profile, server);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      CISQP_METRIC_INC("authz.canview_cache.hit");
      return it->second.explanation;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CISQP_METRIC_INC("authz.canview_cache.miss");
  Entry entry;
  entry.explanation = base_.ExplainCanView(profile, server);
  if (cat_ != nullptr) {
    entry.relations = profile.join.Relations(*cat_);
    for (const IdSet::value_type a : profile.VisibleAttributes()) {
      entry.relations.Insert(cat_->attribute(a).relation);
    }
  }
  CanViewExplanation explanation = entry.explanation;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    memo_.emplace(std::move(key), std::move(entry));
  }
  return explanation;
}

std::size_t CachingPolicy::RetainFrom(const CachingPolicy& prior,
                                      const IdSet& changed_relations) {
  if (cat_ == nullptr || prior.cat_ == nullptr) return 0;
  const std::lock_guard<std::mutex> prior_lock(prior.mu_);
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t retained = 0;
  for (const auto& [key, entry] : prior.memo_) {
    if (entry.relations.empty()) continue;
    if (entry.relations.Intersects(changed_relations)) continue;
    memo_.emplace(key, entry);
    ++retained;
  }
  CISQP_METRIC_ADD("authz.canview_cache.retained", retained);
  return retained;
}

void CachingPolicy::BumpEpoch() {
  const std::lock_guard<std::mutex> lock(mu_);
  // Every entry carries the pre-bump epoch's verdicts; all are affected.
  memo_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
  CISQP_METRIC_INC("authz.canview_cache.epoch_bumps");
}

void CachingPolicy::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  memo_.clear();
}

std::size_t CachingPolicy::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

}  // namespace cisqp::authz
