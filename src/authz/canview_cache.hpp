// CachingPolicy: a memoizing decorator over any Policy (DESIGN.md §15.3).
//
// The planner's hot loop is CanView (Def. 3.3) — one probe per (candidate
// server, node profile) pair, repeated across every join order the plan
// search examines and again by runtime enforcement on every shipment. Under
// a serving workload the same probes recur across requests, so this
// decorator memoizes the full CanViewExplanation keyed by the canonical
// profile encoding plus the probed server. Explanations — not just the
// boolean — are cached so the audit log records byte-identical evidence on
// a hit and a miss.
//
// Epoch stamping is the invalidation contract: every entry is implicitly
// stamped with the epoch current at insertion, and BumpEpoch() discards
// exactly the entries of older epochs (all of them — a policy edit can
// change any verdict). The decorated policy itself is immutable through
// this class; the owner swaps/edits it and then bumps.
//
// An *incremental* policy edit does better: when constructed with a
// catalog, every entry records the relations its profile touches, and
// RetainFrom copies into a fresh memo exactly the prior entries whose
// relation sets are disjoint from the edit's ClosureDelta — verdicts the
// edit provably could not change (DESIGN.md §16). Entries with no recorded
// relations are never retained (an empty set is vacuously disjoint from
// everything, which is the wrong default for safety).
//
// Thread-safe: lookups and inserts serialize on one mutex (probes are
// microseconds; the memo's win is skipping the rule-index walk, not lock
// elision). Hit/miss counters are atomics readable without the lock, and
// are mirrored into the metrics registry as authz.canview_cache.{hit,miss}.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "authz/policy.hpp"

namespace cisqp::authz {

/// Canonical, collision-free encoding of (profile, server) — the memo key.
std::string ProfileCacheKey(const Profile& profile, catalog::ServerId server);

class CachingPolicy : public Policy {
 public:
  /// Decorates `base`, which must outlive this object and must not change
  /// between BumpEpoch calls. When `cat` is non-null (it must then outlive
  /// this object too), entries record their profile's relations, enabling
  /// RetainFrom after an incremental policy edit.
  explicit CachingPolicy(const Policy& base,
                         const catalog::Catalog* cat = nullptr)
      : base_(base), cat_(cat) {}

  bool CanView(const Profile& profile,
               catalog::ServerId server) const override {
    return Explain(profile, server).allowed;
  }

  CanViewExplanation ExplainCanView(const Profile& profile,
                                    catalog::ServerId server) const override {
    return Explain(profile, server);
  }

  /// Current policy epoch (starts at 0).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Invalidates every memo entry of the current epoch and advances the
  /// stamp. Call after any change to the decorated policy.
  void BumpEpoch();

  /// Drops all entries without advancing the epoch (bench cold paths).
  void Clear();

  /// Copies from `prior` every entry whose recorded relation set is
  /// non-empty and disjoint from `changed_relations` — the verdicts an
  /// incremental policy edit provably left intact. Call on a freshly
  /// constructed memo wrapping the post-edit policy. Returns the number of
  /// entries retained; requires both memos to carry a catalog.
  std::size_t RetainFrom(const CachingPolicy& prior,
                         const IdSet& changed_relations);

  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  struct Entry {
    CanViewExplanation explanation;
    IdSet relations;  ///< empty when no catalog was supplied
  };

  CanViewExplanation Explain(const Profile& profile,
                             catalog::ServerId server) const;

  const Policy& base_;
  const catalog::Catalog* cat_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::mutex mu_;  ///< guards memo_
  mutable std::unordered_map<std::string, Entry> memo_;
};

}  // namespace cisqp::authz
