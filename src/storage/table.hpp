// Table: an in-memory relation instance (base or intermediate result).
//
// A Table is a header — the ordered list of catalog attribute ids with their
// types — plus a row store. Base relations are tables whose columns are
// exactly one RelationDef's attributes; operator outputs and shipped
// fragments reuse the same representation, so the execution engine can
// account the wire size of anything it moves with one code path.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "storage/value.hpp"

namespace cisqp::storage {

/// Header entry: which catalog attribute a column carries.
struct Column {
  catalog::AttributeId attribute = catalog::kInvalidId;
  catalog::ValueType type = catalog::ValueType::kInt64;

  friend bool operator==(const Column&, const Column&) = default;
};

/// An in-memory relation instance with value semantics.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<Column> columns) : columns_(std::move(columns)) {
    BuildColumnIndex();
  }

  /// Builds an empty table with the schema of base relation `rel`.
  static Table ForRelation(const catalog::Catalog& cat, catalog::RelationId rel);

  const std::vector<Column>& columns() const noexcept { return columns_; }
  std::size_t column_count() const noexcept { return columns_.size(); }
  std::size_t row_count() const noexcept { return rows_.size(); }
  bool empty() const noexcept { return rows_.empty(); }

  const std::vector<Row>& rows() const noexcept { return rows_; }
  const Row& row(std::size_t i) const { CISQP_CHECK(i < rows_.size()); return rows_[i]; }

  /// First column carrying `attribute`, if present — resolved against the
  /// index precomputed at construction, not by scanning the header.
  std::optional<std::size_t> ColumnIndex(catalog::AttributeId attribute) const noexcept;

  /// The set of attribute ids in the header.
  IdSet AttributeSet() const;

  /// Appends a row after checking arity and cell types (NULL fits any type).
  Status AppendRow(Row row);

  /// Appends without validation; for operator internals that construct rows
  /// from already-validated inputs.
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Reserve(std::size_t n) { rows_.reserve(n); }

  /// Total approximate wire size of all rows (used by the network model).
  std::size_t WireSizeBytes() const noexcept;

  /// Rows sorted by total order — a canonical form for multiset comparison.
  Table Canonicalized() const;

  /// True iff both tables have identical headers and equal row multisets.
  /// Compares via sorted row-index permutations — no table or row copies.
  static bool SameRowMultiset(const Table& a, const Table& b);

  /// Renders an aligned ASCII table (examples / debugging).
  std::string ToDisplayString(const catalog::Catalog& cat,
                              std::size_t max_rows = 20) const;

 private:
  void BuildColumnIndex();

  std::vector<Column> columns_;
  std::vector<Row> rows_;
  /// (attribute, column) pairs sorted by attribute then column, so the first
  /// hit of a binary search is the first occurrence in the header.
  std::vector<std::pair<catalog::AttributeId, std::size_t>> column_index_;
};

}  // namespace cisqp::storage
