#include "serve/admission.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::serve {

AdmissionController::AdmissionController(std::size_t max_concurrent,
                                         std::size_t max_queue)
    : max_concurrent_(max_concurrent == 0 ? 1 : max_concurrent),
      max_queue_(max_queue) {}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    std::int64_t* queue_wait_us) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool must_wait = running_ >= max_concurrent_ || queued_ > 0;
  if (must_wait && queued_ >= max_queue_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    CISQP_METRIC_INC("serve.rejected");
    return ResourceExhaustedError(
        "admission queue full (" + std::to_string(queued_) + " waiting, " +
        std::to_string(running_) + " running)");
  }
  const std::uint64_t seq = next_ticket_++;
  std::int64_t waited_us = 0;
  if (must_wait) {
    ++queued_;
    CISQP_METRIC_SET("serve.queued", static_cast<double>(queued_));
    const std::int64_t start = obs::NowMicros();
    cv_.wait(lock, [&] {
      return seq == now_serving_ && running_ < max_concurrent_;
    });
    waited_us = obs::NowMicros() - start;
    --queued_;
    CISQP_METRIC_SET("serve.queued", static_cast<double>(queued_));
  }
  ++now_serving_;
  ++running_;
  admitted_.fetch_add(1, std::memory_order_relaxed);
  CISQP_METRIC_INC("serve.admitted");
  CISQP_METRIC_SET("serve.running", static_cast<double>(running_));
  lock.unlock();
  // FIFO hand-off: the successor's seq just became now_serving_; it may be
  // admissible already when slots remain.
  cv_.notify_all();
  if (queue_wait_us != nullptr) *queue_wait_us = waited_us;
  return Ticket(this);
}

void AdmissionController::ReleaseSlot() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    --running_;
    CISQP_METRIC_SET("serve.running", static_cast<double>(running_));
  }
  cv_.notify_all();
}

void AdmissionController::Ticket::Release() {
  if (owner_ != nullptr) {
    owner_->ReleaseSlot();
    owner_ = nullptr;
  }
}

std::size_t AdmissionController::running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::size_t AdmissionController::queued() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace cisqp::serve
