// Raw (unresolved) AST for the select-from-where dialect.
//
// Names are kept as written (bare or dotted); the binder resolves them
// against a catalog into a plan::QuerySpec.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "algebra/expr.hpp"

namespace cisqp::sql {

/// `a = b` inside an ON clause (attribute names, possibly dotted).
struct AstJoinCondition {
  std::string left;
  std::string right;
};

/// `JOIN <relation> ON <cond> AND <cond> ...`.
struct AstJoin {
  std::string relation;
  std::vector<AstJoinCondition> conditions;
};

/// One WHERE conjunct: `<attr> <op> <literal | attr>`.
struct AstCondition {
  std::string lhs;
  algebra::CompareOp op = algebra::CompareOp::kEq;
  /// Literal value, or the name of the right-hand attribute.
  std::variant<storage::Value, std::string> rhs;

  bool rhs_is_name() const noexcept {
    return std::holds_alternative<std::string>(rhs);
  }
};

struct AstQuery {
  bool explain = false;                 ///< EXPLAIN <select>: plan only
  bool analyze = false;                 ///< EXPLAIN ANALYZE: execute + profile
  bool distinct = false;                ///< SELECT DISTINCT
  bool select_star = false;             ///< SELECT *
  std::vector<std::string> select_list; ///< empty when select_star
  std::string first_relation;
  std::vector<AstJoin> joins;
  std::vector<AstCondition> where;      ///< conjunctive
};

}  // namespace cisqp::sql
