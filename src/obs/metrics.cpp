#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cisqp::obs {
namespace {

/// Bucket index for `value`: 0 for v < 1 (and negatives), else
/// 1 + floor(log2(v)), clamped to the last bucket.
std::size_t BucketOf(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  const int exponent = std::ilogb(value);
  const std::size_t index = static_cast<std::size_t>(exponent) + 1;
  return index >= HistogramData::kBuckets ? HistogramData::kBuckets - 1 : index;
}

/// Renders a double without trailing noise ("3", "3.5", "0.25").
std::string Compact(double value) {
  std::ostringstream oss;
  oss << value;
  return oss.str();
}

}  // namespace

double HistogramData::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the wanted observation, 1-based, in [1, count].
  const double rank = 1.0 + q * static_cast<double>(count - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[i];
    if (rank > static_cast<double>(seen)) continue;
    // Interpolate within [lo, hi) = this bucket's value range by the
    // fraction of the bucket's population below the wanted rank.
    const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
    const double hi = std::ldexp(1.0, static_cast<int>(i));
    const double fraction =
        buckets[i] == 1
            ? 0.0
            : (rank - before - 1.0) / static_cast<double>(buckets[i] - 1);
    const double value = lo + fraction * (hi - lo);
    return std::clamp(value, min, max);
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::AddSlow(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::SetSlow(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::ObserveSlow(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), HistogramData{}).first;
  }
  HistogramData& h = it->second;
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[BucketOf(value)];
}

std::uint64_t MetricsRegistry::Counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::Gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramData MetricsRegistry::Histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramData{} : it->second;
}

std::string MetricsRegistry::ToText() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  for (const auto& [name, value] : counters_) {
    oss << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    oss << name << " " << Compact(value) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    oss << name << " count=" << h.count << " sum=" << Compact(h.sum)
        << " min=" << Compact(h.min) << " max=" << Compact(h.max)
        << " mean=" << Compact(h.mean()) << " p50=" << Compact(h.Percentile(0.5))
        << " p95=" << Compact(h.Percentile(0.95))
        << " p99=" << Compact(h.Percentile(0.99)) << "\n";
  }
  return oss.str();
}

std::string MetricsRegistry::ToJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  oss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << JsonEscape(name) << "\":" << value;
  }
  oss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << JsonEscape(name) << "\":" << Compact(value);
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << JsonEscape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << Compact(h.sum) << ",\"min\":" << Compact(h.min)
        << ",\"max\":" << Compact(h.max) << ",\"mean\":" << Compact(h.mean())
        << ",\"p50\":" << Compact(h.Percentile(0.5))
        << ",\"p95\":" << Compact(h.Percentile(0.95))
        << ",\"p99\":" << Compact(h.Percentile(0.99)) << "}";
  }
  oss << "}}";
  return oss.str();
}

}  // namespace cisqp::obs
