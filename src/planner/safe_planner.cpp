#include "planner/safe_planner.hpp"

#include <algorithm>
#include <cstdlib>

#include "authz/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::planner {
namespace {

/// Mutable per-node working state of one planning run.
struct NodeState {
  authz::Profile profile;
  std::vector<Candidate> candidates;  ///< sorted by count desc, stable
  std::optional<Candidate> leftslave;
  std::optional<Candidate> rightslave;
  std::vector<CandidateRejection> rejections;  ///< failed probes (diagnostics)
};

/// Keeps candidate lists in the order the paper's GetFirst expects:
/// decreasing join counter; stable for ties so right-child candidates (added
/// first at a join, per the Fig. 6 case order) precede left-child ones.
void SortCandidates(std::vector<Candidate>& candidates) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.count > b.count;
                   });
}

class PlannerRun {
 public:
  PlannerRun(const catalog::Catalog& cat, const authz::Policy& auths,
             const SafePlannerOptions& options, const plan::QueryPlan& plan)
      : cat_(cat), auths_(auths), options_(options), plan_(plan),
        states_(static_cast<std::size_t>(plan.node_count())),
        planted_skip_right_check_(
            std::getenv("CISQP_FUZZ_PLANT_SKIP_RIGHT_CHECK") != nullptr) {}

  Result<PlanningReport> Run() {
    CISQP_TRACE_SPAN(span, "planner.safe_plan");
    span.AddAttribute("nodes", plan_.node_count());
    CISQP_METRIC_INC("planner.runs");
    PlanningReport report;
    if (!FindCandidates(*plan_.root())) {
      report.feasible = false;
      report.blocking_node = blocking_node_;
      report.can_view_calls = can_view_calls_;
      report.blocking_rejections =
          states_[static_cast<std::size_t>(blocking_node_)].rejections;
      CISQP_METRIC_INC("planner.infeasible");
      span.AddAttribute("feasible", false);
      span.AddAttribute("blocking_node", blocking_node_);
      return report;
    }
    span.AddAttribute("feasible", true);

    Assignment assignment(plan_.node_count());
    AssignEx(*plan_.root(), std::nullopt, assignment);

    // Requestor extension: the party issuing the query must be allowed to
    // view the final result unless it computed the result itself.
    if (options_.requestor) {
      const catalog::ServerId root_master = assignment.Of(plan_.root()->id).master;
      if (*options_.requestor != root_master &&
          !CanView(State(*plan_.root()).profile, *options_.requestor,
                   plan_.root()->id, "requestor",
                   obs::AuditSite::kRequestor)) {
        report.feasible = false;
        report.blocking_node = plan_.root()->id;
        report.can_view_calls = can_view_calls_;
        report.blocking_rejections.push_back(CandidateRejection{
            *options_.requestor, FromChild::kSelf, ExecutionMode::kLocal,
            "requestor", State(*plan_.root()).profile});
        return report;
      }
    }

    SafePlan safe;
    safe.assignment = std::move(assignment);
    safe.profiles.reserve(states_.size());
    for (const NodeState& state : states_) safe.profiles.push_back(state.profile);
    safe.trace = std::move(trace_);
    report.feasible = true;
    report.plan = std::move(safe);
    report.can_view_calls = can_view_calls_;
    span.AddAttribute("can_view_calls", can_view_calls_);
    return report;
  }

 private:
  NodeState& State(const plan::PlanNode& node) {
    return states_[static_cast<std::size_t>(node.id)];
  }

  bool CanView(const authz::Profile& profile, catalog::ServerId server,
               int node_id, const char* role,
               std::optional<obs::AuditSite> site = std::nullopt) {
    ++can_view_calls_;
    CISQP_METRIC_INC("planner.canview_probes");
    return authz::AuditedCanView(cat_, auths_, profile, server,
                                 site.value_or(options_.audit_site), node_id,
                                 role);
  }

  /// True iff failover excluded `server` from this run (treated as gone).
  bool Excluded(catalog::ServerId server) const {
    return std::find(options_.excluded_servers.begin(),
                     options_.excluded_servers.end(),
                     server) != options_.excluded_servers.end();
  }

  /// Post-order traversal; returns false when some node has no candidate
  /// (the paper's exit(n)), recording it in blocking_node_.
  bool FindCandidates(const plan::PlanNode& node) {
    if (node.left && !FindCandidates(*node.left)) return false;
    if (node.right && !FindCandidates(*node.right)) return false;

    NodeState& state = State(node);
    switch (node.op) {
      case plan::PlanOp::kRelation: {
        state.profile = authz::Profile::OfBaseRelation(cat_, node.relation);
        const catalog::ServerId home = cat_.relation(node.relation).server;
        if (Excluded(home)) {
          // The relation's only holder is gone; no candidate can exist.
          state.rejections.push_back(CandidateRejection{
              home, FromChild::kSelf, ExecutionMode::kLocal,
              "home server excluded (down)", state.profile});
        } else {
          state.candidates.push_back(
              Candidate{home, FromChild::kSelf, 0, ExecutionMode::kLocal,
                        std::nullopt});
        }
        break;
      }
      case plan::PlanOp::kProject: {
        const NodeState& child = State(*node.left);
        IdSet x;
        for (catalog::AttributeId a : node.projection) x.Insert(a);
        state.profile = authz::Profile::Project(child.profile, std::move(x));
        for (const Candidate& c : child.candidates) {
          state.candidates.push_back(
              Candidate{c.server, FromChild::kLeft, c.count,
                        ExecutionMode::kLocal, std::nullopt});
        }
        break;
      }
      case plan::PlanOp::kSelect: {
        const NodeState& child = State(*node.left);
        state.profile = authz::Profile::Select(
            child.profile, node.predicate.ReferencedAttributes());
        for (const Candidate& c : child.candidates) {
          state.candidates.push_back(
              Candidate{c.server, FromChild::kLeft, c.count,
                        ExecutionMode::kLocal, std::nullopt});
        }
        break;
      }
      case plan::PlanOp::kJoin:
        FindJoinCandidates(node, state);
        break;
    }

    SortCandidates(state.candidates);
    CISQP_METRIC_ADD("planner.candidates", state.candidates.size());
    CISQP_METRIC_ADD("planner.rejections", state.rejections.size());
    trace_.find_candidates.push_back(NodeTrace{
        node.id, state.profile, state.candidates,
        state.leftslave ? std::optional(state.leftslave->server) : std::nullopt,
        state.rightslave ? std::optional(state.rightslave->server) : std::nullopt});
    if (state.candidates.empty()) {
      blocking_node_ = node.id;
      return false;
    }
    return true;
  }

  void FindJoinCandidates(const plan::PlanNode& node, NodeState& state) {
    NodeState& l = State(*node.left);
    NodeState& r = State(*node.right);
    const JoinModeViews views =
        ComputeJoinModeViews(l.profile, r.profile, node.join_atoms);
    state.profile = authz::Profile::Join(l.profile, r.profile, views.condition);

    // CanView probe that records failed attempts for diagnostics.
    const auto probe = [&](const authz::Profile& view, catalog::ServerId server,
                           FromChild from, ExecutionMode mode,
                           const char* role) {
      if (CanView(view, server, node.id, role)) return true;
      state.rejections.push_back(CandidateRejection{server, from, mode, role, view});
      return false;
    };

    // Case [S_r, NULL] and [S_r, S_l]: a master from the right child, with
    // the left operand either shipped whole or reduced through a left slave.
    // The slave search scans left-child candidates in decreasing counter
    // order and keeps the first two distinct hits: one slave suffices since
    // slaves are never propagated upward (paper §5), except that Def. 4.1
    // requires master ≠ slave — when a master candidate coincides with the
    // primary slave, the runner-up slave restores completeness
    // (DESIGN.md §2.2).
    std::optional<Candidate> leftslave2;
    for (const Candidate& c : l.candidates) {
      if (!probe(views.left_slave_view, c.server, FromChild::kLeft,
                 ExecutionMode::kSemiJoin, "slave")) {
        continue;
      }
      if (!state.leftslave) {
        state.leftslave = c;
      } else if (c.server != state.leftslave->server) {
        leftslave2 = c;
        break;
      }
    }
    const auto slave_for = [](const std::optional<Candidate>& primary,
                              const std::optional<Candidate>& secondary,
                              catalog::ServerId master)
        -> std::optional<catalog::ServerId> {
      if (primary && primary->server != master) return primary->server;
      if (secondary && secondary->server != master) return secondary->server;
      return std::nullopt;
    };
    for (const Candidate& c : r.candidates) {
      const std::optional<catalog::ServerId> slave =
          slave_for(state.leftslave, leftslave2, c.server);
      if (slave && probe(views.right_master_view, c.server, FromChild::kRight,
                         ExecutionMode::kSemiJoin, "master")) {
        state.candidates.push_back(Candidate{c.server, FromChild::kRight,
                                             c.count + 1, ExecutionMode::kSemiJoin,
                                             slave});
      } else if (planted_skip_right_check_ ||
                 probe(views.right_full_view, c.server, FromChild::kRight,
                       ExecutionMode::kRegularJoin, "master")) {
        // planted_skip_right_check_ is the differential harness's seeded
        // fault (DESIGN.md §11.4): with CISQP_FUZZ_PLANT_SKIP_RIGHT_CHECK
        // set, a right-child master is admitted without the Def. 3.3 probe
        // on its regular-join view. The fuzz tests assert this gets caught
        // and minimized; it must never be set outside those tests.
        state.candidates.push_back(Candidate{c.server, FromChild::kRight,
                                             c.count + 1,
                                             ExecutionMode::kRegularJoin,
                                             std::nullopt});
      }
    }

    // Symmetric case [S_l, NULL] and [S_l, S_r].
    std::optional<Candidate> rightslave2;
    for (const Candidate& c : r.candidates) {
      if (!probe(views.right_slave_view, c.server, FromChild::kRight,
                 ExecutionMode::kSemiJoin, "slave")) {
        continue;
      }
      if (!state.rightslave) {
        state.rightslave = c;
      } else if (c.server != state.rightslave->server) {
        rightslave2 = c;
        break;
      }
    }
    for (const Candidate& c : l.candidates) {
      const std::optional<catalog::ServerId> slave =
          slave_for(state.rightslave, rightslave2, c.server);
      if (slave && probe(views.left_master_view, c.server, FromChild::kLeft,
                         ExecutionMode::kSemiJoin, "master")) {
        state.candidates.push_back(Candidate{c.server, FromChild::kLeft,
                                             c.count + 1, ExecutionMode::kSemiJoin,
                                             slave});
      } else if (probe(views.left_full_view, c.server, FromChild::kLeft,
                       ExecutionMode::kRegularJoin, "master")) {
        state.candidates.push_back(Candidate{c.server, FromChild::kLeft,
                                             c.count + 1,
                                             ExecutionMode::kRegularJoin,
                                             std::nullopt});
      }
    }

    // Footnote-3 extension: a third party that may view both operands in
    // full can execute the join as a proxy master.
    if (state.candidates.empty() && options_.allow_third_party) {
      for (catalog::ServerId t = 0; t < cat_.server_count(); ++t) {
        if (Excluded(t)) continue;
        if (probe(views.right_full_view, t, FromChild::kThird,
                  ExecutionMode::kRegularJoin, "proxy") &&
            probe(views.left_full_view, t, FromChild::kThird,
                  ExecutionMode::kRegularJoin, "proxy")) {
          state.candidates.push_back(Candidate{
              t, FromChild::kThird, 1, ExecutionMode::kRegularJoin, std::nullopt});
        }
      }
    }
  }

  void AssignEx(const plan::PlanNode& node,
                std::optional<catalog::ServerId> from_parent,
                Assignment& assignment) {
    NodeState& state = State(node);
    const Candidate* chosen = nullptr;
    if (from_parent) {
      for (const Candidate& c : state.candidates) {
        if (c.server == *from_parent) {
          chosen = &c;
          break;
        }
      }
      CISQP_CHECK_MSG(chosen != nullptr,
                      "parent pushed a server that is not a candidate of node n"
                          << node.id);
    } else {
      chosen = &state.candidates.front();
    }

    Executor ex;
    ex.master = chosen->server;
    ex.mode = node.op == plan::PlanOp::kJoin ? chosen->mode : ExecutionMode::kLocal;
    ex.origin = chosen->from;

    std::optional<catalog::ServerId> to_left;
    std::optional<catalog::ServerId> to_right;
    switch (chosen->from) {
      case FromChild::kSelf:
        break;
      case FromChild::kLeft:
        if (node.op == plan::PlanOp::kJoin &&
            chosen->mode == ExecutionMode::kSemiJoin) {
          CISQP_CHECK(chosen->slave.has_value());
          ex.slave = chosen->slave;
        }
        to_left = ex.master;
        to_right = ex.slave;
        break;
      case FromChild::kRight:
        if (node.op == plan::PlanOp::kJoin &&
            chosen->mode == ExecutionMode::kSemiJoin) {
          CISQP_CHECK(chosen->slave.has_value());
          ex.slave = chosen->slave;
        }
        to_left = ex.slave;
        to_right = ex.master;
        break;
      case FromChild::kThird:
        // Proxy master: children pick their own best candidates.
        break;
    }

    assignment.Set(node.id, ex);
    trace_.assign.push_back(AssignTrace{node.id, ex, from_parent});
    if (node.left) AssignEx(*node.left, to_left, assignment);
    if (node.right) AssignEx(*node.right, to_right, assignment);
  }

  const catalog::Catalog& cat_;
  const authz::Policy& auths_;
  const SafePlannerOptions& options_;
  const plan::QueryPlan& plan_;
  std::vector<NodeState> states_;
  PlanningTrace trace_;
  std::size_t can_view_calls_ = 0;
  int blocking_node_ = -1;
  /// Seeded fault for the differential harness; see FindJoinCandidates.
  const bool planted_skip_right_check_;
};

}  // namespace

Result<PlanningReport> SafePlanner::Analyze(const plan::QueryPlan& plan) const {
  if (plan.empty()) return InvalidArgumentError("cannot plan an empty query tree");
  CISQP_RETURN_IF_ERROR(plan.Validate(cat_));
  PlannerRun run(cat_, auths_, options_, plan);
  return run.Run();
}

Result<SafePlan> SafePlanner::Plan(const plan::QueryPlan& plan) const {
  CISQP_ASSIGN_OR_RETURN(PlanningReport report, Analyze(plan));
  if (!report.feasible) {
    return InfeasibleError("no safe executor assignment exists; blocked at node n" +
                           std::to_string(report.blocking_node));
  }
  return std::move(*report.plan);
}

}  // namespace cisqp::planner
