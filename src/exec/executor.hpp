// DistributedExecutor: runs a query tree plan under an executor assignment,
// materializing the exact Fig. 5 flows — whole-relation shipments for
// regular joins, the 5-step semi-join protocol — over the simulated cluster,
// with per-transfer network accounting and runtime release enforcement.
//
// Runtime enforcement is the second line of defense behind the planner: every
// *physical* shipment is checked against the authorization set with the
// profile of the shipped relation before the receiving server sees a byte.
// A safe assignment never trips it (tests assert this); a hand-crafted unsafe
// assignment is stopped at the first unauthorized transfer.
//
// Fault tolerance (DESIGN.md §10): when a FaultModel is attached, every
// shipment attempt can be dropped (transient) or fail permanently. Transient
// faults retry with exponential backoff on a per-query *virtual* clock under
// a per-query deadline; a permanent server failure triggers
// authorization-aware failover — the plan is re-planned over the surviving
// servers (SafePlanner with the dead servers excluded, audited under the
// failover site) and re-executed, with Def. 3.3 re-checked at runtime on
// every replanned transfer. Recovery can therefore never widen a release:
// an unrecoverable query fails kUnavailable, an unsafe re-route kUnauthorized.
#pragma once

#include <cstdint>

#include "algebra/vectorized.hpp"
#include "authz/authorization.hpp"
#include "exec/cluster.hpp"
#include "exec/fault_model.hpp"
#include "exec/network.hpp"
#include "obs/profile.hpp"
#include "planner/assignment.hpp"
#include "planner/mode_views.hpp"
#include "planner/safe_planner.hpp"

namespace cisqp::exec {

/// Re-send policy for transient faults. Backoff advances the query's
/// virtual clock (no real sleeping): attempt k waits
/// min(initial * multiplier^(k-1), max_backoff_us) before re-sending, and
/// the query as a whole fails kUnavailable once the clock would pass
/// `deadline_us`.
struct RetryPolicy {
  int max_attempts = 5;                  ///< send attempts per transfer
  std::int64_t initial_backoff_us = 1000;
  double backoff_multiplier = 2.0;
  std::int64_t max_backoff_us = 256000;
  std::int64_t deadline_us = 10000000;   ///< per-query virtual deadline
};

/// What recovery did during one execution (all zero on the happy path).
struct RecoveryStats {
  std::size_t transient_faults = 0;  ///< dropped attempts observed
  std::size_t retries = 0;           ///< re-send attempts performed
  std::size_t failovers = 0;         ///< replan-over-survivors rounds
  std::int64_t backoff_wait_us = 0;  ///< virtual time spent backing off
  /// Permanently-failed servers excluded from the plan, exclusion order.
  std::vector<catalog::ServerId> excluded_servers;
};

struct ExecutionOptions {
  /// Check every physical transfer against the authorization set.
  bool enforce_releases = true;
  /// Deliver the final result to this server (checked as a release when it
  /// differs from the root master).
  std::optional<catalog::ServerId> requestor;
  /// Fault injector consulted on every shipment attempt; nullptr = the
  /// fault-free federation the paper assumes.
  FaultModel* faults = nullptr;
  RetryPolicy retry;
  /// Replan over surviving servers when a server fails permanently. When
  /// false the same schedule fails with a typed kUnavailable instead.
  bool failover = true;
  /// Base planner options for the failover replan (third-party setting etc.).
  /// The executor adds the dead-server exclusions, the requestor above, and
  /// the kFailover audit site itself.
  planner::SafePlannerOptions failover_planner;
  /// When set, receives the transfer log of a FAILED execution —
  /// ExecutionResult only exists on success, but enforcement tests must be
  /// able to assert what was (not) shipped before the error. On success the
  /// log lives solely in ExecutionResult::network and this sink is cleared,
  /// never left holding a duplicate copy of the log.
  NetworkStats* network_out = nullptr;
  /// When set, the execution fills one OperatorStats per plan node and one
  /// TransferStats per shipment into this profile (EXPLAIN ANALYZE, benches,
  /// stats feedback). Independent of the Tracer/MetricsRegistry enablement;
  /// nullptr — the default — costs one pointer test per operator.
  obs::QueryProfile* profile = nullptr;
  /// Intra-operator parallelism for the vectorized kernels (DESIGN.md §14):
  /// target thread count including the caller. 1 — the default — runs the
  /// exact sequential kernel paths; >1 borrows the process-shared pool for
  /// that thread count (unless `pool` below is set) and fans operators out
  /// in morsels — concurrent queries share the workers rather than each
  /// spawning their own. Results are byte-identical at any thread count.
  std::size_t threads = 1;
  /// Shared worker pool to use instead of spawning one per execution (e.g.
  /// the benches' long-lived pool). Overrides `threads`.
  ThreadPool* pool = nullptr;
  /// Kernel tiling knobs (morsel_rows, radix_bits, min_parallel_rows). The
  /// pool field inside is ignored — the executor installs the pool resolved
  /// from `pool`/`threads` above.
  algebra::MorselContext morsel;
};

/// Compute performed at one server during a query (operator invocations, the
/// rows they produced, and the wall-clock time spent producing them) — the
/// load-distribution side of the accounting, complementing NetworkStats'
/// communication side.
struct ServerLoad {
  std::size_t operations = 0;
  std::size_t rows_produced = 0;
  std::int64_t busy_us = 0;  ///< wall-clock microseconds in operator code
};

struct ExecutionResult {
  storage::Table table;
  catalog::ServerId result_server = catalog::kInvalidId;
  NetworkStats network;
  std::map<catalog::ServerId, ServerLoad> load;  ///< per executing server
  std::int64_t duration_us = 0;  ///< total wall-clock execution time
  RecoveryStats recovery;        ///< retries/failovers performed, if any
};

class DistributedExecutor {
 public:
  DistributedExecutor(const Cluster& cluster,
                      const authz::Policy& auths)
      : cluster_(cluster), auths_(auths) {}

  /// Executes `plan` under `assignment`. Fails with kUnauthorized when
  /// enforcement trips, kUnavailable when injected faults exhaust recovery,
  /// kInvalidArgument on malformed plans/assignments.
  Result<ExecutionResult> Execute(const plan::QueryPlan& plan,
                                  const planner::Assignment& assignment,
                                  const ExecutionOptions& options = {}) const;

 private:
  const Cluster& cluster_;
  const authz::Policy& auths_;
};

/// Reference evaluator: runs `plan` as if all relations were local, with no
/// authorization or distribution concerns. The distributed execution of a
/// valid assignment must return the same row multiset (tests rely on this).
Result<storage::Table> ExecuteCentralized(const Cluster& cluster,
                                          const plan::QueryPlan& plan);

}  // namespace cisqp::exec
