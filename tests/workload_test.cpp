// Tests for the workload generators: structural validity, determinism, and
// the knobs the experiments sweep.
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace cisqp::workload {
namespace {

TEST(MedicalScenarioTest, PopulatedDataIsConsistent) {
  const catalog::Catalog cat = MedicalScenario::BuildCatalog();
  exec::Cluster cluster(cat);
  Rng rng(7);
  ASSERT_OK(MedicalScenario::PopulateCluster(
      cluster, MedicalScenario::DataConfig{300, 0.5, 0.5, 20}, rng));
  EXPECT_EQ(cluster.TableOf(cat.FindRelation("Nat_registry").value()).row_count(), 300u);
  EXPECT_EQ(cluster.TableOf(cat.FindRelation("Disease_list").value()).row_count(), 20u);
  const auto& hospital = cluster.TableOf(cat.FindRelation("Hospital").value());
  EXPECT_GT(hospital.row_count(), 50u);
  EXPECT_LT(hospital.row_count(), 250u);
}

TEST(MedicalScenarioTest, DataIsDeterministicUnderSeed) {
  const catalog::Catalog cat = MedicalScenario::BuildCatalog();
  exec::Cluster a(cat);
  exec::Cluster b(cat);
  Rng ra(11);
  Rng rb(11);
  ASSERT_OK(MedicalScenario::PopulateCluster(a, {}, ra));
  ASSERT_OK(MedicalScenario::PopulateCluster(b, {}, rb));
  for (catalog::RelationId r = 0; r < cat.relation_count(); ++r) {
    EXPECT_TRUE(storage::Table::SameRowMultiset(a.TableOf(r), b.TableOf(r)));
  }
}

TEST(GeneratorTest, FederationHasRequestedShape) {
  Rng rng(1);
  FederationConfig config;
  config.servers = 5;
  config.relations = 8;
  const Federation fed = GenerateFederation(config, rng);
  EXPECT_EQ(fed.catalog.server_count(), 5u);
  EXPECT_EQ(fed.catalog.relation_count(), 8u);
  // Spanning tree ⇒ at least relations-1 edges.
  EXPECT_GE(fed.catalog.join_edges().size(), 7u);
  EXPECT_EQ(fed.attribute_domain.size(), fed.catalog.attribute_count());
}

TEST(GeneratorTest, JoinConnectedAttributesShareDomains) {
  Rng rng(2);
  const Federation fed = GenerateFederation({}, rng);
  for (const catalog::JoinEdge& e : fed.catalog.join_edges()) {
    EXPECT_EQ(fed.attribute_domain[e.left], fed.attribute_domain[e.right]);
  }
}

TEST(GeneratorTest, FederationIsDeterministic) {
  Rng ra(33);
  Rng rb(33);
  const Federation a = GenerateFederation({}, ra);
  const Federation b = GenerateFederation({}, rb);
  EXPECT_EQ(a.catalog.DebugString(), b.catalog.DebugString());
  EXPECT_EQ(a.attribute_domain, b.attribute_domain);
}

TEST(GeneratorTest, QueriesValidateAndConnect) {
  Rng rng(3);
  const Federation fed = GenerateFederation({}, rng);
  for (int i = 0; i < 50; ++i) {
    QueryConfig config;
    config.relations = 1 + rng.UniformIndex(4);
    auto spec = GenerateQuery(fed.catalog, config, rng);
    ASSERT_OK(spec.status());
    ASSERT_OK(spec->Validate(fed.catalog));
    EXPECT_EQ(spec->Relations().size(), config.relations);
    // Built plans validate too.
    auto plan = plan::PlanBuilder(fed.catalog).Build(*spec);
    ASSERT_OK(plan.status());
  }
}

TEST(GeneratorTest, QueryTooLargeFails) {
  Rng rng(4);
  const Federation fed = GenerateFederation({}, rng);
  QueryConfig config;
  config.relations = 99;
  EXPECT_EQ(GenerateQuery(fed.catalog, config, rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GeneratorTest, AuthorizationsValidateAndIncludeOwnGrants) {
  Rng rng(5);
  const Federation fed = GenerateFederation({}, rng);
  const authz::AuthorizationSet auths =
      GenerateAuthorizations(fed.catalog, {}, rng);
  EXPECT_GT(auths.size(), 0u);
  // Own-relation grants present: every server can view its own relations.
  for (catalog::RelationId r = 0; r < fed.catalog.relation_count(); ++r) {
    EXPECT_TRUE(auths.CanView(
        authz::Profile::OfBaseRelation(fed.catalog, r),
        fed.catalog.relation(r).server));
  }
}

TEST(GeneratorTest, DensityKnobMonotonicallyAddsGrants) {
  Rng r1(6);
  Rng r2(6);
  AuthzConfig sparse;
  sparse.base_grant_prob = 0.0;
  sparse.path_grants_per_server = 0;
  AuthzConfig dense;
  dense.base_grant_prob = 1.0;
  dense.path_grants_per_server = 5;
  Rng fed_rng(7);
  const Federation fed = GenerateFederation({}, fed_rng);
  const auto a = GenerateAuthorizations(fed.catalog, sparse, r1);
  const auto b = GenerateAuthorizations(fed.catalog, dense, r2);
  EXPECT_LT(a.size(), b.size());
}

TEST(GeneratorTest, PopulatedClustersExecuteEndToEnd) {
  Rng rng(8);
  const Federation fed = GenerateFederation({}, rng);
  exec::Cluster cluster(fed.catalog);
  DataConfig data;
  data.min_rows = 50;
  data.max_rows = 100;
  ASSERT_OK(PopulateCluster(cluster, fed, data, rng));
  for (catalog::RelationId r = 0; r < fed.catalog.relation_count(); ++r) {
    EXPECT_GE(cluster.TableOf(r).row_count(), 50u);
    EXPECT_LE(cluster.TableOf(r).row_count(), 100u);
  }
  // A generated join query over generated data runs centralized.
  QueryConfig qc;
  qc.relations = 2;
  auto spec = GenerateQuery(fed.catalog, qc, rng);
  ASSERT_OK(spec.status());
  auto plan = plan::PlanBuilder(fed.catalog).Build(*spec);
  ASSERT_OK(plan.status());
  EXPECT_OK(exec::ExecuteCentralized(cluster, *plan).status());
}

TEST(GeneratorTest, StatsMatchData) {
  Rng rng(9);
  const Federation fed = GenerateFederation({}, rng);
  exec::Cluster cluster(fed.catalog);
  ASSERT_OK(PopulateCluster(cluster, fed, {}, rng));
  const plan::StatsCatalog stats = ComputeStats(cluster);
  for (catalog::RelationId r = 0; r < fed.catalog.relation_count(); ++r) {
    EXPECT_DOUBLE_EQ(stats.Of(r).rows,
                     static_cast<double>(cluster.TableOf(r).row_count()));
  }
}

}  // namespace
}  // namespace cisqp::workload
