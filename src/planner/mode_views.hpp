// The per-mode view obligations of paper Fig. 5 / Fig. 6.
//
// Executing a join `Rl ⋈_j Rr` in a given mode forces specific relations to
// flow between the two executing servers; each flow releases a view with a
// specific profile. This header centralizes those profiles so the paper's
// algorithm, the exhaustive baseline, the cost-based planner, the
// independent safety verifier, and the execution engine's runtime
// enforcement all derive them from one implementation.
//
// Naming follows the paper's Fig. 6 pseudocode:
//   right_slave_view  = [Jl, Rl⋈, Rlσ]        what the RIGHT server sees when
//                                              acting as slave ([Sl,Sr]): the
//                                              master's join-attribute column
//   left_slave_view   = [Jr, Rr⋈, Rrσ]        symmetric, left server as slave
//   left_master_view  = [Jl ∪ Rrπ, Rl⋈∪Rr⋈∪j, Rlσ∪Rrσ]
//                                              what the LEFT server sees as
//                                              semi-join master: the reduced
//                                              right relation joined back
//   right_master_view = [Rlπ ∪ Jr, Rl⋈∪Rr⋈∪j, Rlσ∪Rrσ]  symmetric
//   left_full_view    = [Rrπ, Rr⋈, Rrσ]       what the LEFT server sees in a
//                                              regular join: all of Rr
//   right_full_view   = [Rlπ, Rl⋈, Rlσ]       symmetric
#pragma once

#include "authz/authorization.hpp"
#include "authz/profile.hpp"
#include "plan/plan_node.hpp"

namespace cisqp::planner {

/// All six Fig. 6 view profiles of one join node.
struct JoinModeViews {
  authz::Profile left_slave_view;
  authz::Profile right_slave_view;
  authz::Profile left_master_view;
  authz::Profile right_master_view;
  authz::Profile left_full_view;
  authz::Profile right_full_view;
  authz::JoinPath condition;  ///< `j`, the node's own equi-join atoms
  IdSet left_join_attrs;      ///< Jl
  IdSet right_join_attrs;     ///< Jr
};

/// Computes the six view profiles from the children's profiles and the
/// node's join atoms.
JoinModeViews ComputeJoinModeViews(const authz::Profile& left,
                                   const authz::Profile& right,
                                   const std::vector<algebra::EquiJoinAtom>& atoms);

/// Converts a plan node's equi-join atoms to a canonical JoinPath.
authz::JoinPath AtomsToJoinPath(const std::vector<algebra::EquiJoinAtom>& atoms);

/// Computes the profile of every node of `plan` bottom-up per paper Fig. 4,
/// indexed by node id. The plan must validate against `cat`.
std::vector<authz::Profile> ComputeNodeProfiles(const catalog::Catalog& cat,
                                                const plan::QueryPlan& plan);

}  // namespace cisqp::planner
