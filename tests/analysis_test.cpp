// Tests for the policy-analysis helpers (visibility matrix, policy diff).
#include <gtest/gtest.h>

#include "authz/analysis.hpp"
#include "authz/chase.hpp"
#include "test_util.hpp"

namespace cisqp::authz {
namespace {

using cisqp::testing::MedicalFixture;
using cisqp::testing::Relation;
using cisqp::testing::Server;

class AnalysisTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;
};

TEST_F(AnalysisTest, MedicalVisibilityMatrix) {
  const auto matrix = BaseVisibilityMatrix(fix_.cat, fix_.auths);
  ASSERT_EQ(matrix.size(), 4u);
  const auto vis = [&](const char* server, const char* rel) {
    return matrix[Server(fix_.cat, server)][Relation(fix_.cat, rel)];
  };
  // Every server sees its own relation in full.
  EXPECT_EQ(vis("S_I", "Insurance"), BaseVisibility::kFull);
  EXPECT_EQ(vis("S_H", "Hospital"), BaseVisibility::kFull);
  EXPECT_EQ(vis("S_D", "Disease_list"), BaseVisibility::kFull);
  // Fig. 3 rules 9 and 10: S_N sees Insurance fully and Hospital partially
  // (Patient, Disease — no Physician).
  EXPECT_EQ(vis("S_N", "Insurance"), BaseVisibility::kFull);
  EXPECT_EQ(vis("S_N", "Hospital"), BaseVisibility::kPartial);
  // S_I sees nothing of Nat_registry unconditionally (rule 2 has a path).
  EXPECT_EQ(vis("S_I", "Nat_registry"), BaseVisibility::kNone);
  EXPECT_EQ(vis("S_I", "Hospital"), BaseVisibility::kNone);
}

TEST_F(AnalysisTest, MatrixRenders) {
  const auto matrix = BaseVisibilityMatrix(fix_.cat, fix_.auths);
  const std::string rendered = VisibilityMatrixToString(fix_.cat, matrix);
  EXPECT_NE(rendered.find("S_N"), std::string::npos);
  EXPECT_NE(rendered.find("Insurance"), std::string::npos);
  EXPECT_NE(rendered.find('F'), std::string::npos);
  EXPECT_NE(rendered.find('p'), std::string::npos);
}

TEST_F(AnalysisTest, DiffAgainstSelfIsEmpty) {
  const PolicyDiff diff = DiffPolicies(fix_.auths, fix_.auths);
  EXPECT_TRUE(diff.Identical());
}

TEST_F(AnalysisTest, DiffFindsChaseDerivedRules) {
  ASSERT_OK_AND_ASSIGN(AuthorizationSet closed,
                       ChaseClosure(fix_.cat, fix_.auths));
  const PolicyDiff diff = DiffPolicies(fix_.auths, closed);
  EXPECT_TRUE(diff.only_in_a.empty());  // closure only adds
  EXPECT_EQ(diff.only_in_b.size(), closed.size() - fix_.auths.size());
  for (const Authorization& rule : diff.only_in_b) {
    EXPECT_FALSE(rule.path.empty()) << rule.ToString(fix_.cat);
  }
}

TEST_F(AnalysisTest, DiffIsDirectional) {
  AuthorizationSet extended = fix_.auths;
  ASSERT_OK(extended.Add(fix_.cat, "S_D", {"Patient"}, {}));
  const PolicyDiff forward = DiffPolicies(fix_.auths, extended);
  EXPECT_TRUE(forward.only_in_a.empty());
  ASSERT_EQ(forward.only_in_b.size(), 1u);
  EXPECT_EQ(forward.only_in_b[0].server, Server(fix_.cat, "S_D"));
  const PolicyDiff backward = DiffPolicies(extended, fix_.auths);
  EXPECT_EQ(backward.only_in_a.size(), 1u);
  EXPECT_TRUE(backward.only_in_b.empty());
}

TEST_F(AnalysisTest, EmptyPolicyMatrixIsAllNone) {
  const auto matrix = BaseVisibilityMatrix(fix_.cat, AuthorizationSet{});
  for (const auto& row : matrix) {
    for (const BaseVisibility v : row) {
      EXPECT_EQ(v, BaseVisibility::kNone);
    }
  }
}

}  // namespace
}  // namespace cisqp::authz
