// Tracing: lightweight nested spans over the planner and executor hot paths.
//
// A `Span` is an RAII region timed with the monotonic clock and tagged with
// key/value attributes; finished spans accumulate in the process-wide
// `Tracer`. Two exporters render the recording: a Chrome `trace_event` JSON
// document (load it at chrome://tracing or in Perfetto) and a compact
// indented text tree for terminals.
//
// Observability contract (DESIGN.md §8): disabled by default and
// zero-cost-when-disabled. Every entry point first checks a single bool
// (`Tracer::Get().enabled()`); compiling with -DCISQP_OBS_DISABLED turns the
// check into `if constexpr (false)` so the instrumentation folds away
// entirely. Attribute *values* that are expensive to render must be guarded
// by `span.active()` at the call site — the overloads below only take
// already-cheap scalar or string arguments.
//
// The recorder is thread-safe (DESIGN.md §9): the span store is guarded by
// a mutex, while the open-span stack that provides nesting (depth/parent)
// is thread-local, so spans opened on a pool worker nest strictly LIFO
// within that worker and never interleave with another thread's stack. Each
// recording thread gets a stable small `tid` carried into the Chrome
// trace_event export. Enable()/Clear() are not synchronized against
// in-flight recording — toggle the tracer only from quiescent code, as
// every current call site does.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cisqp::obs {

/// Compile-time master switch: -DCISQP_OBS_DISABLED removes all
/// instrumentation from the generated code.
#ifdef CISQP_OBS_DISABLED
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

/// Monotonic microseconds since the first call in this process.
std::int64_t NowMicros() noexcept;

/// One finished (or still-open) span as recorded by the Tracer.
struct SpanRecord {
  std::string name;
  std::int64_t start_us = 0;     ///< NowMicros() at construction
  std::int64_t duration_us = -1; ///< -1 while the span is still open
  int depth = 0;                 ///< nesting level (root = 0, per thread)
  int parent = -1;               ///< index of the enclosing span, or -1
  int tid = 0;                   ///< small stable id of the recording thread
  int pid = 1;                   ///< trace lane (federation server) id
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Lane naming for the Chrome export: Perfetto renders each pid as a named
/// process track and each (pid, tid) as a named thread row, so federation
/// servers show up as "server:Alice" lanes instead of bare integers.
struct TraceMetadata {
  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> thread_names;

  bool empty() const noexcept {
    return process_names.empty() && thread_names.empty();
  }
};

/// Process-wide span recorder. Disabled by default; `Enable()` starts a
/// fresh recording.
class Tracer {
 public:
  static Tracer& Get();

  /// Starts recording (clears any previous spans).
  void Enable();
  /// Stops recording; already-finished spans stay readable for export.
  void Disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void Clear();

  /// Read-only view of the recording; call only while no thread is
  /// recording (the exporters below do the same).
  const std::vector<SpanRecord>& spans() const noexcept { return spans_; }
  const TraceMetadata& metadata() const noexcept { return metadata_; }

  /// Names the Chrome-export lane `pid` (e.g. a federation server). Cleared
  /// by Enable()/Clear() together with the spans.
  void SetProcessName(int pid, std::string name);
  /// Names thread `tid` within lane `pid`.
  void SetThreadName(int pid, int tid, std::string name);

  /// Chrome trace_event JSON of the current recording.
  std::string ChromeTraceJson() const;
  /// Indented text tree of the current recording.
  std::string TextTree() const;

  // Internal API used by Span; index-based so Span stays trivially movable.
  int BeginSpan(std::string_view name);
  /// Begins a span nested under `parent_index` (a span possibly opened on
  /// another thread) instead of this thread's innermost open span. This is
  /// how pool workers and remote servers attach causally to the query span
  /// that dispatched them.
  int BeginSpanWithParent(std::string_view name, int parent_index);
  void EndSpan(int index);
  void AddAttribute(int index, std::string_view key, std::string value);
  void SetSpanLane(int index, int pid);

 private:
  std::atomic<bool> enabled_{false};
  std::mutex mu_;           ///< guards spans_ (the stacks are thread-local)
  std::vector<SpanRecord> spans_;
  TraceMetadata metadata_;  ///< also guarded by mu_
};

/// RAII tracing region. Constructing while the tracer is disabled records
/// nothing and costs one bool check.
class Span {
 public:
  explicit Span(std::string_view name) {
    if constexpr (kObsCompiledIn) {
      if (Tracer::Get().enabled()) index_ = Tracer::Get().BeginSpan(name);
    }
  }
  /// Opens a span nested under `parent` regardless of which thread opened
  /// it; falls back to stack nesting when `parent` is not recording.
  Span(std::string_view name, const Span& parent) {
    if constexpr (kObsCompiledIn) {
      if (Tracer::Get().enabled()) {
        index_ = parent.index_ >= 0
                     ? Tracer::Get().BeginSpanWithParent(name, parent.index_)
                     : Tracer::Get().BeginSpan(name);
      }
    }
  }
  ~Span() {
    if constexpr (kObsCompiledIn) {
      if (index_ >= 0) Tracer::Get().EndSpan(index_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is being recorded — gate expensive attribute
  /// rendering on it.
  bool active() const noexcept { return index_ >= 0; }

  /// Tracer-internal index of this span (-1 when not recording). Carried as
  /// the parent-span trace context on inter-server transfers.
  int index() const noexcept { return index_; }

  /// Assigns this span to Chrome-export lane `pid` (a federation server).
  void SetLane(int pid) {
    if (index_ >= 0) Tracer::Get().SetSpanLane(index_, pid);
  }

  void AddAttribute(std::string_view key, std::string value) {
    if (index_ >= 0) Tracer::Get().AddAttribute(index_, key, std::move(value));
  }
  void AddAttribute(std::string_view key, std::string_view value) {
    if (index_ >= 0) Tracer::Get().AddAttribute(index_, key, std::string(value));
  }
  void AddAttribute(std::string_view key, const char* value) {
    if (index_ >= 0) Tracer::Get().AddAttribute(index_, key, std::string(value));
  }
  void AddAttribute(std::string_view key, std::int64_t value) {
    if (index_ >= 0) {
      Tracer::Get().AddAttribute(index_, key, std::to_string(value));
    }
  }
  void AddAttribute(std::string_view key, std::size_t value) {
    if (index_ >= 0) {
      Tracer::Get().AddAttribute(index_, key, std::to_string(value));
    }
  }
  void AddAttribute(std::string_view key, int value) {
    AddAttribute(key, static_cast<std::int64_t>(value));
  }
  void AddAttribute(std::string_view key, double value) {
    if (index_ >= 0) {
      Tracer::Get().AddAttribute(index_, key, std::to_string(value));
    }
  }
  void AddAttribute(std::string_view key, bool value) {
    if (index_ >= 0) {
      Tracer::Get().AddAttribute(index_, key, value ? "true" : "false");
    }
  }

 private:
  int index_ = -1;
};

/// Declares an RAII span. The macro spelling keeps instrumentation sites
/// grep-able and uniform: CISQP_TRACE_SPAN(span, "planner.safe_plan");
#define CISQP_TRACE_SPAN(var, name) ::cisqp::obs::Span var{name}

/// Chrome trace_event JSON ("X" complete events) for `spans`. Open spans
/// (duration -1) export with zero duration. When `metadata` is non-null its
/// process/thread names are emitted as "M" metadata events, and spans whose
/// parent sits on a different (pid, tid) lane additionally get "s"/"f" flow
/// events so cross-server causality renders as arrows in Perfetto.
std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans,
                              const TraceMetadata* metadata = nullptr);

/// Indented per-span text tree: "name 123us k=v ...".
std::string ToTextTree(const std::vector<SpanRecord>& spans);

/// Structural check that `text` is a valid Chrome trace_event document: a
/// JSON object whose "traceEvents" member is an array of objects each
/// carrying a string "name"/"ph" and numeric "ts"/"dur"/"pid"/"tid". Parses
/// the full JSON grammar (objects, arrays, strings with escapes, numbers,
/// literals), so malformed JSON fails too. On failure returns false and sets
/// `*error` (when non-null) to a diagnostic.
bool ValidateChromeTraceJson(std::string_view text, std::string* error = nullptr);

/// Escapes `text` for inclusion inside a JSON string literal (no quotes
/// added). Shared by the exporters, the metrics snapshot, and bench
/// artifacts.
std::string JsonEscape(std::string_view text);

}  // namespace cisqp::obs
