// MinCostSafePlanner: the communication-optimal safe assignment.
//
// Dynamic program over (plan node, result server): the minimum total bytes
// shipped to produce the node's result at that server under only safe
// executions — the same Fig. 5/Fig. 6 view obligations the paper's
// algorithm enforces. Exact within the Def. 4.1 assignment space (masters
// come from operand servers), polynomial: O(nodes × servers² × modes).
//
// Used as the upper baseline in the E7 ablation: how much communication does
// the paper's greedy two-principle heuristic leave on the table?
#pragma once

#include "authz/authorization.hpp"
#include "planner/assignment.hpp"
#include "planner/cost_model.hpp"
#include "planner/mode_views.hpp"

namespace cisqp::planner {

struct CostedPlan {
  Assignment assignment;
  double total_bytes = 0.0;  ///< estimated bytes shipped by all joins
};

class MinCostSafePlanner {
 public:
  MinCostSafePlanner(const catalog::Catalog& cat,
                     const authz::Policy& auths,
                     const plan::StatsCatalog* stats = nullptr,
                     CostModelOptions cost_options = {},
                     const plan::StatsFeedback* feedback = nullptr)
      : cat_(cat),
        auths_(auths),
        model_(cat, stats, cost_options, feedback) {}

  /// The cheapest safe assignment, or kInfeasible when none exists.
  Result<CostedPlan> Plan(const plan::QueryPlan& plan) const;

  /// Estimated bytes an existing assignment would ship (same model), so the
  /// heuristic and the optimum are compared on one scale.
  Result<double> EstimateAssignmentBytes(const plan::QueryPlan& plan,
                                         const Assignment& assignment) const;

 private:
  const catalog::Catalog& cat_;
  const authz::Policy& auths_;
  CostModel model_;
};

}  // namespace cisqp::planner
