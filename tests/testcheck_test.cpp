// Tests for the differential-testing library (DESIGN.md §11): scenario
// generation and repro round-trips, the edit/clone machinery the minimizer
// builds on, clean-campaign greenness, and the acceptance check that a
// deliberately planted planner fault is caught and shrunk to a tiny repro.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "test_util.hpp"
#include "testcheck/harness.hpp"
#include "testcheck/minimizer.hpp"
#include "testcheck/scenario.hpp"

namespace cisqp::testcheck {
namespace {

/// Sets an environment variable for the enclosing scope, unsetting it on
/// exit even when an ASSERT bails out of the test body.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

std::size_t TotalRows(const Scenario& s) {
  std::size_t total = 0;
  for (const auto& table : s.rows) total += table.size();
  return total;
}

/// First seed in [1, limit] the generator accepts, as a scenario.
Result<Scenario> FirstUsableScenario(const ScenarioConfig& config,
                                     std::uint64_t limit = 50) {
  for (std::uint64_t seed = 1; seed <= limit; ++seed) {
    Result<Scenario> s = GenerateScenario(config, seed);
    if (s.ok()) return s;
  }
  return NotFoundError("no usable seed in range");
}

TEST(ScenarioGeneration, SameSeedIsDeterministic) {
  const ScenarioConfig config;
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Result<Scenario> a = GenerateScenario(config, seed);
    Result<Scenario> b = GenerateScenario(config, seed);
    ASSERT_EQ(a.ok(), b.ok()) << "seed " << seed;
    if (!a.ok()) continue;
    EXPECT_EQ(a->ToReproText(), b->ToReproText()) << "seed " << seed;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(ScenarioGeneration, ReproTextRoundTrips) {
  const ScenarioConfig config;
  std::size_t round_tripped = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Result<Scenario> s = GenerateScenario(config, seed);
    if (!s.ok()) continue;
    const std::string text = s->ToReproText();
    ASSERT_OK_AND_ASSIGN(Scenario parsed, ParseReproText(text));
    // Parsing then re-rendering is a fixed point: same schema, same policy,
    // same rows, same query.
    EXPECT_EQ(parsed.ToReproText(), text) << "seed " << seed;
    ++round_tripped;
  }
  EXPECT_GT(round_tripped, 10u);
}

TEST(ScenarioEditing, CloneReproducesTheScenarioExactly) {
  ASSERT_OK_AND_ASSIGN(Scenario s, FirstUsableScenario({}));
  ASSERT_OK_AND_ASSIGN(Scenario clone, CloneScenario(s));
  EXPECT_EQ(clone.ToReproText(), s.ToReproText());
}

TEST(ScenarioEditing, DroppingAGrantRemovesExactlyThatGrant) {
  ASSERT_OK_AND_ASSIGN(Scenario s, FirstUsableScenario({}));
  ASSERT_GT(s.auths.size(), 0u);
  ScenarioEdit edit;
  edit.drop_grants.push_back(0);
  ASSERT_OK_AND_ASSIGN(Scenario edited, ApplyEdit(s, edit));
  EXPECT_EQ(edited.auths.size(), s.auths.size() - 1);
  EXPECT_EQ(edited.catalog.relation_count(), s.catalog.relation_count());
}

TEST(ScenarioEditing, HalvingRowsShrinksEveryNonEmptyRelation) {
  ASSERT_OK_AND_ASSIGN(Scenario s, FirstUsableScenario({}));
  ScenarioEdit edit;
  edit.halve_rows = true;
  ASSERT_OK_AND_ASSIGN(Scenario edited, ApplyEdit(s, edit));
  ASSERT_EQ(edited.rows.size(), s.rows.size());
  for (std::size_t r = 0; r < s.rows.size(); ++r) {
    // Keeps every second row: ceil(n / 2) survive.
    EXPECT_EQ(edited.rows[r].size(), (s.rows[r].size() + 1) / 2);
  }
  EXPECT_LT(TotalRows(edited), TotalRows(s));
}

TEST(ScenarioEditing, DroppingAQueryRelationIsRejected) {
  ASSERT_OK_AND_ASSIGN(Scenario s, FirstUsableScenario({}));
  ScenarioEdit edit;
  edit.drop_relations.Insert(
      static_cast<IdSet::value_type>(s.query.first_relation));
  // The rebuilt query would reference a dropped relation — the minimizer
  // treats this as "candidate rejected", not as a crash.
  EXPECT_FALSE(ApplyEdit(s, edit).ok());
}

TEST(DifferentialCheck, CleanSeedsProduceNoMismatches) {
  const ScenarioConfig config;
  CheckOptions options;
  options.fault_seeds = {7};
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 30 && checked < 20; ++seed) {
    Result<Scenario> s = GenerateScenario(config, seed);
    if (!s.ok()) continue;
    ASSERT_OK_AND_ASSIGN(CheckReport report, CheckScenario(*s, options));
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.ToString();
    ++checked;
  }
  EXPECT_GE(checked, 10u);
}

TEST(DifferentialCheck, PlantedUnsafePlanIsCaughtAndMinimized) {
  // The acceptance gate for the whole harness: a planner bug deliberately
  // planted behind a hidden env flag (skip the Def. 3.3 check on the right
  // side of regular joins — DESIGN.md §11.4) must be found by the campaign
  // and shrunk to a repro of at most 3 relations and 4 grants.
  const ScenarioConfig config;
  CheckOptions options;
  std::optional<Scenario> failing;
  MismatchKind kind = MismatchKind::kPipelineError;
  std::optional<Scenario> minimal;
  {
    EnvGuard plant("CISQP_FUZZ_PLANT_SKIP_RIGHT_CHECK", "1");
    for (std::uint64_t seed = 1; seed <= 200 && !failing; ++seed) {
      Result<Scenario> s = GenerateScenario(config, seed);
      if (!s.ok()) continue;
      ASSERT_OK_AND_ASSIGN(CheckReport report, CheckScenario(*s, options));
      if (!report.ok()) {
        kind = report.mismatches.front().kind;
        failing = std::move(*s);
      }
    }
    ASSERT_TRUE(failing.has_value())
        << "the planted fault never fired within 200 seeds";

    const auto fails = [&](const Scenario& candidate) {
      const Result<CheckReport> report = CheckScenario(candidate, options);
      if (!report.ok()) return false;
      for (const Mismatch& m : report->mismatches) {
        if (m.kind == kind) return true;
      }
      return false;
    };
    ASSERT_OK_AND_ASSIGN(Scenario clone, CloneScenario(*failing));
    MinimizeStats stats;
    minimal = MinimizeScenario(std::move(clone), fails, {}, &stats);
    EXPECT_GT(stats.candidates_tried, 0u);
    EXPECT_LE(minimal->catalog.relation_count(), 3u);
    EXPECT_LE(minimal->auths.size(), 4u);
    EXPECT_TRUE(fails(*minimal)) << minimal->ToReproText();

    // The minimized repro survives a text round-trip and still fails.
    ASSERT_OK_AND_ASSIGN(Scenario replayed,
                         ParseReproText(minimal->ToReproText()));
    EXPECT_TRUE(fails(replayed));
  }

  // With the fault unplanted the very same scenario is green again.
  ASSERT_OK_AND_ASSIGN(CheckReport clean, CheckScenario(*minimal, options));
  EXPECT_TRUE(clean.ok()) << clean.ToString();
}

}  // namespace
}  // namespace cisqp::testcheck
