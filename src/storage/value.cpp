#include "storage/value.hpp"

#include <sstream>
#include <vector>

namespace cisqp::storage {

catalog::ValueType Value::type() const {
  CISQP_CHECK_MSG(!is_null(), "NULL has no concrete ValueType");
  if (is_int64()) return catalog::ValueType::kInt64;
  if (is_double()) return catalog::ValueType::kDouble;
  return catalog::ValueType::kString;
}

bool Value::SqlEquals(const Value& other) const noexcept {
  if (is_null() || other.is_null()) return false;
  return rep_ == other.rep_;
}

int Value::CompareTotal(const Value& other) const noexcept {
  const auto tag = [](const Value& v) -> int {
    if (v.is_null()) return 0;
    if (v.is_int64()) return 1;
    if (v.is_double()) return 2;
    return 3;
  };
  const int ta = tag(*this);
  const int tb = tag(other);
  if (ta != tb) return ta < tb ? -1 : 1;
  switch (ta) {
    case 0: return 0;
    case 1: {
      const auto a = std::get<std::int64_t>(rep_);
      const auto b = std::get<std::int64_t>(other.rep_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case 2: {
      const double a = std::get<double>(rep_);
      const double b = std::get<double>(other.rep_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      const std::string& a = std::get<std::string>(rep_);
      const std::string& b = std::get<std::string>(other.rep_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
}

bool Value::SqlLess(const Value& other) const noexcept {
  if (is_null() || other.is_null()) return false;
  if (rep_.index() != other.rep_.index()) return false;
  return CompareTotal(other) < 0;
}

std::size_t Value::WireSizeBytes() const noexcept {
  if (is_null()) return 1;
  if (is_string()) return std::get<std::string>(rep_).size() + 4;
  return 8;
}

std::size_t Value::Hash() const noexcept {
  std::size_t seed = rep_.index();
  if (is_int64()) HashCombine(seed, std::get<std::int64_t>(rep_));
  else if (is_double()) HashCombine(seed, std::get<double>(rep_));
  else if (is_string()) HashCombine(seed, std::get<std::string>(rep_));
  return seed;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(std::get<std::int64_t>(rep_));
  if (is_double()) {
    std::ostringstream oss;
    oss << std::get<double>(rep_);
    return oss.str();
  }
  return "'" + std::get<std::string>(rep_) + "'";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

std::size_t HashRow(const Row& row) noexcept {
  std::size_t seed = 0x9e3779b97f4a7c15ull;
  for (const Value& v : row) HashCombine(seed, v.Hash());
  return seed;
}

}  // namespace cisqp::storage
