// IdSet: an ordered set of small integer ids backed by a sorted vector.
//
// Attribute sets (the `Rπ` and `Rσ` components of a relation profile) and
// server sets are small — tens of elements — so a sorted vector beats node
// based containers and gives O(n) union/subset, canonical ordering for free,
// and cheap equality. This type is the workhorse of the authorization model.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <vector>

#include "common/status.hpp"

namespace cisqp {

/// Ordered set of `std::uint32_t` ids with value semantics.
class IdSet {
 public:
  using value_type = std::uint32_t;
  using const_iterator = std::vector<value_type>::const_iterator;

  IdSet() = default;
  IdSet(std::initializer_list<value_type> ids) : ids_(ids) { Normalize(); }

  /// Builds from an arbitrary (possibly unsorted, duplicated) vector.
  static IdSet FromVector(std::vector<value_type> ids) {
    IdSet s;
    s.ids_ = std::move(ids);
    s.Normalize();
    return s;
  }

  bool empty() const noexcept { return ids_.empty(); }
  std::size_t size() const noexcept { return ids_.size(); }
  const_iterator begin() const noexcept { return ids_.begin(); }
  const_iterator end() const noexcept { return ids_.end(); }
  const std::vector<value_type>& ids() const noexcept { return ids_; }

  bool Contains(value_type id) const noexcept {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  /// Inserts `id`; returns true when newly inserted.
  bool Insert(value_type id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) return false;
    ids_.insert(it, id);
    return true;
  }

  /// Removes `id`; returns true when it was present.
  bool Erase(value_type id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) return false;
    ids_.erase(it);
    return true;
  }

  /// True iff every element of *this is in `other` (⊆, not strict).
  bool IsSubsetOf(const IdSet& other) const noexcept {
    return std::includes(other.ids_.begin(), other.ids_.end(),
                         ids_.begin(), ids_.end());
  }

  bool Intersects(const IdSet& other) const noexcept {
    auto a = ids_.begin();
    auto b = other.ids_.begin();
    while (a != ids_.end() && b != other.ids_.end()) {
      if (*a < *b) ++a;
      else if (*b < *a) ++b;
      else return true;
    }
    return false;
  }

  /// In-place union; returns *this.
  IdSet& UnionWith(const IdSet& other) {
    std::vector<value_type> merged;
    merged.reserve(ids_.size() + other.ids_.size());
    std::set_union(ids_.begin(), ids_.end(),
                   other.ids_.begin(), other.ids_.end(),
                   std::back_inserter(merged));
    ids_ = std::move(merged);
    return *this;
  }

  static IdSet Union(const IdSet& a, const IdSet& b) {
    IdSet out = a;
    out.UnionWith(b);
    return out;
  }

  static IdSet Intersection(const IdSet& a, const IdSet& b) {
    IdSet out;
    std::set_intersection(a.ids_.begin(), a.ids_.end(),
                          b.ids_.begin(), b.ids_.end(),
                          std::back_inserter(out.ids_));
    return out;
  }

  /// Elements of `a` not in `b`.
  static IdSet Difference(const IdSet& a, const IdSet& b) {
    IdSet out;
    std::set_difference(a.ids_.begin(), a.ids_.end(),
                        b.ids_.begin(), b.ids_.end(),
                        std::back_inserter(out.ids_));
    return out;
  }

  friend bool operator==(const IdSet& a, const IdSet& b) noexcept {
    return a.ids_ == b.ids_;
  }
  /// Lexicographic; gives IdSet a total order usable as a map key.
  friend bool operator<(const IdSet& a, const IdSet& b) noexcept {
    return a.ids_ < b.ids_;
  }

 private:
  void Normalize() {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }

  std::vector<value_type> ids_;
};

}  // namespace cisqp
