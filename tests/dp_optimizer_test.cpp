// Tests for the exact DP join-order optimizer, including bushy plans flowing
// through the safe planner and the distributed executor.
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "plan/dp_optimizer.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace cisqp::plan {
namespace {

using cisqp::testing::MedicalFixture;
using cisqp::testing::Relation;

class DpOptimizerTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;
};

TEST_F(DpOptimizerTest, OptimizesThePaperQuery) {
  StatsCatalog stats;
  stats.Set(Relation(fix_.cat, "Insurance"), RelationStats{1000.0, {}});
  stats.Set(Relation(fix_.cat, "Nat_registry"), RelationStats{5000.0, {}});
  stats.Set(Relation(fix_.cat, "Hospital"), RelationStats{50.0, {}});
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  ASSERT_OK_AND_ASSIGN(DpOptimizerResult result,
                       OptimizeJoinOrder(fix_.cat, &stats, spec));
  ASSERT_OK(result.plan.Validate(fix_.cat));
  EXPECT_GT(result.subsets_explored, 3u);
  EXPECT_GT(result.estimated_cost, 0.0);
  EXPECT_EQ(result.plan.JoinCount(), 2);
}

TEST_F(DpOptimizerTest, NeverWorseThanGreedy) {
  // Over random selection-free queries (the DP's cost model does not see
  // WHERE pushdown; with selections the metrics diverge by design): the
  // DP's finished plan must cost no more than the greedy builder's tree
  // under the same intermediate-rows estimator.
  Rng rng(4040);
  for (int round = 0; round < 10; ++round) {
    workload::FederationConfig fed_config;
    fed_config.relations = 7;
    fed_config.extra_edge_prob = 0.4;
    const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
    exec::Cluster cluster(fed.catalog);
    ASSERT_OK(workload::PopulateCluster(cluster, fed, {}, rng));
    const StatsCatalog stats = workload::ComputeStats(cluster);
    workload::QueryConfig query_config;
    query_config.relations = 5;
    query_config.where_prob = 0.0;
    auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
    if (!spec.ok()) continue;

    ASSERT_OK_AND_ASSIGN(DpOptimizerResult dp,
                         OptimizeJoinOrder(fed.catalog, &stats, *spec));

    BuildOptions greedy_options;
    greedy_options.join_order = JoinOrderPolicy::kGreedyCost;
    PlanBuilder builder(fed.catalog, &stats);
    auto greedy = builder.Build(*spec, greedy_options);
    ASSERT_OK(greedy.status());
    // Sum of intermediate rows, same estimator, both finished plans.
    const auto cost_of = [&](const QueryPlan& plan) {
      double cost = 0.0;
      plan.ForEachPreOrder([&](const PlanNode& n) {
        if (n.op == PlanOp::kJoin) cost += builder.EstimateCardinality(n);
      });
      return cost;
    };
    EXPECT_LE(cost_of(dp.plan), cost_of(*greedy) * (1.0 + 1e-9))
        << spec->ToString(fed.catalog);
    // The DP's internal cost matches the external estimator on its own plan.
    EXPECT_NEAR(dp.estimated_cost, cost_of(dp.plan),
                1e-6 * std::max(1.0, dp.estimated_cost));
  }
}

TEST_F(DpOptimizerTest, BushyBeatsLeftDeepWhenItShould) {
  // Star-free chain A-B-C-D with huge middle relations: the bushy plan
  // (A⋈B) ⋈ (C⋈D) avoids the giant left-deep intermediates.
  catalog::Catalog cat;
  const auto s = cat.AddServer("s").value();
  for (const char* name : {"A", "B", "C", "D"}) {
    const std::string key = std::string(name) + "K";
    const std::string link = std::string(name) + "L";
    CISQP_CHECK(cat.AddRelation(name, s,
                                {{key, catalog::ValueType::kInt64},
                                 {link, catalog::ValueType::kInt64}},
                                {key}).ok());
  }
  ASSERT_OK(cat.AddJoinEdge("AL", "BK"));
  ASSERT_OK(cat.AddJoinEdge("BL", "CK"));
  ASSERT_OK(cat.AddJoinEdge("CL", "DK"));
  StatsCatalog stats;
  const auto set = [&](const char* rel, double rows, double key_distinct) {
    RelationStats rs{rows, {}};
    rs.distinct[cat.FindAttribute(std::string(rel) + "K").value()] = key_distinct;
    rs.distinct[cat.FindAttribute(std::string(rel) + "L").value()] = key_distinct;
    stats.Set(cat.FindRelation(rel).value(), rs);
  };
  set("A", 10.0, 10.0);
  set("B", 100000.0, 10.0);  // B and C explode unless joined late
  set("C", 100000.0, 10.0);
  set("D", 10.0, 10.0);

  auto spec = sql::ParseAndBind(
      cat, "SELECT AK, DK FROM A JOIN B ON AL = BK JOIN C ON BL = CK "
           "JOIN D ON CL = DK");
  ASSERT_OK(spec.status());

  DpOptimizerOptions bushy;
  DpOptimizerOptions left_deep;
  left_deep.bushy = false;
  ASSERT_OK_AND_ASSIGN(DpOptimizerResult bushy_result,
                       OptimizeJoinOrder(cat, &stats, *spec, bushy));
  ASSERT_OK_AND_ASSIGN(DpOptimizerResult left_deep_result,
                       OptimizeJoinOrder(cat, &stats, *spec, left_deep));
  EXPECT_LE(bushy_result.estimated_cost, left_deep_result.estimated_cost);
  ASSERT_OK(bushy_result.plan.Validate(cat));
  ASSERT_OK(left_deep_result.plan.Validate(cat));
  // The left-deep plan really is left-deep.
  left_deep_result.plan.ForEachPreOrder([&](const PlanNode& n) {
    if (n.op == PlanOp::kJoin) {
      const PlanNode* right = n.right.get();
      while (right->op == PlanOp::kProject || right->op == PlanOp::kSelect) {
        right = right->left.get();
      }
      EXPECT_EQ(right->op, PlanOp::kRelation);
    }
  });
}

TEST_F(DpOptimizerTest, CapAndErrorHandling) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      sql::ParseAndBind(fix_.cat, workload::MedicalScenario::kPaperQuery));
  DpOptimizerOptions options;
  options.max_relations = 2;
  EXPECT_EQ(OptimizeJoinOrder(fix_.cat, nullptr, spec, options).status().code(),
            StatusCode::kInvalidArgument);
  // Single-relation queries pass through.
  ASSERT_OK_AND_ASSIGN(QuerySpec single,
                       sql::ParseAndBind(fix_.cat, "SELECT Plan FROM Insurance"));
  ASSERT_OK_AND_ASSIGN(DpOptimizerResult result,
                       OptimizeJoinOrder(fix_.cat, nullptr, single));
  EXPECT_EQ(result.plan.JoinCount(), 0);
  EXPECT_DOUBLE_EQ(result.estimated_cost, 0.0);
}

TEST_F(DpOptimizerTest, BushyPlansPlanAndExecuteSafely) {
  // End to end with bushy shapes: random federations, DP plans, safe
  // planning, distributed execution vs centralized reference.
  Rng rng(5050);
  int executed = 0;
  for (int round = 0; round < 8; ++round) {
    workload::FederationConfig fed_config;
    fed_config.relations = 6;
    fed_config.extra_edge_prob = 0.4;
    const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
    workload::AuthzConfig authz_config;
    authz_config.base_grant_prob = 0.9;
    authz_config.path_grants_per_server = 6;
    const authz::AuthorizationSet auths =
        workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
    exec::Cluster cluster(fed.catalog);
    workload::DataConfig data;
    data.min_rows = 20;
    data.max_rows = 80;
    ASSERT_OK(workload::PopulateCluster(cluster, fed, data, rng));
    const StatsCatalog stats = workload::ComputeStats(cluster);

    workload::QueryConfig query_config;
    query_config.relations = 4;
    auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
    if (!spec.ok()) continue;
    ASSERT_OK_AND_ASSIGN(DpOptimizerResult dp,
                         OptimizeJoinOrder(fed.catalog, &stats, *spec));

    planner::SafePlanner planner(fed.catalog, auths);
    ASSERT_OK_AND_ASSIGN(planner::PlanningReport report, planner.Analyze(dp.plan));
    if (!report.feasible) continue;
    EXPECT_OK(planner::VerifyAssignment(fed.catalog, auths, dp.plan,
                                        report.plan->assignment));
    exec::DistributedExecutor executor(cluster, auths);
    ASSERT_OK_AND_ASSIGN(exec::ExecutionResult result,
                         executor.Execute(dp.plan, report.plan->assignment));
    ASSERT_OK_AND_ASSIGN(storage::Table reference,
                         exec::ExecuteCentralized(cluster, dp.plan));
    EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, reference));
    ++executed;
  }
  EXPECT_GT(executed, 0);
}

}  // namespace
}  // namespace cisqp::plan
