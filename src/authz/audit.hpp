// Bridge between the abstract Policy decision and the process audit log.
//
// `AuditedCanView` is the one call every authorization check site (planner
// probe, verifier release check, executor runtime enforcement) routes
// through. When the audit log is disabled it is exactly `policy.CanView` —
// one extra bool check. When enabled, it asks the policy to *explain* its
// verdict and appends a fully rendered `obs::AuditEntry` naming the check
// site, the plan node, the candidate server, the view profile, and the
// covering rule or the first failed condition.
#pragma once

#include <string>
#include <string_view>

#include "authz/policy.hpp"
#include "obs/audit.hpp"

namespace cisqp::authz {

/// CanView with audit recording. `node_id` is the plan node the check
/// belongs to (-1 when none); `detail` names the role or flow being checked
/// ("semi-join step 2: ...", "master candidate", ...).
bool AuditedCanView(const catalog::Catalog& cat, const Policy& policy,
                    const Profile& profile, catalog::ServerId server,
                    obs::AuditSite site, int node_id, std::string_view detail);

}  // namespace cisqp::authz
