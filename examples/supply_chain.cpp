// Supply chain: the model in a second domain, driven by the federation DSL.
//
// Suppliers, a manufacturer, logistics, and a retailer cooperate on queries
// while the policy protects unit costs, supplier identities, and revenue.
// For every workload query: plan, explain denials, execute, and account the
// communication.
//
// Build & run:  ./build/examples/supply_chain
#include <cstdio>

#include "exec/executor.hpp"
#include "plan/builder.hpp"
#include "planner/plan_search.hpp"
#include "planner/safe_planner.hpp"
#include "sql/binder.hpp"
#include "workload/supply_chain.hpp"

using namespace cisqp;

int main() {
  auto fed = workload::SupplyChainScenario::Build();
  if (!fed.ok()) {
    std::printf("scenario failed to parse: %s\n", fed.status().ToString().c_str());
    return 1;
  }
  const catalog::Catalog& cat = fed->catalog;
  std::printf("--- federation (from DSL) ---\n%s\n", cat.DebugString().c_str());
  std::printf("--- policy ---\n%s\n", fed->authorizations.ToString(cat).c_str());

  exec::Cluster cluster(cat);
  Rng rng(7);
  if (const Status s = workload::SupplyChainScenario::PopulateCluster(
          cluster, *fed, {}, rng);
      !s.ok()) {
    std::printf("populate failed: %s\n", s.ToString().c_str());
    return 1;
  }

  planner::SafePlanner planner(cat, fed->authorizations);
  planner::FeasiblePlanSearch search(cat, fed->authorizations);
  exec::DistributedExecutor executor(cluster, fed->authorizations);

  for (const auto& q : workload::SupplyChainScenario::WorkloadQueries()) {
    std::printf("=== %s ===\n%s\n", q.name.c_str(), q.sql.c_str());
    auto spec = sql::ParseAndBind(cat, q.sql);
    if (!spec.ok()) {
      std::printf("bind error: %s\n\n", spec.status().ToString().c_str());
      continue;
    }
    auto plan = plan::PlanBuilder(cat).Build(*spec);
    if (!plan.ok()) {
      std::printf("plan error: %s\n\n", plan.status().ToString().c_str());
      continue;
    }
    auto report = planner.Analyze(*plan);
    if (!report.ok()) {
      std::printf("planner error: %s\n\n", report.status().ToString().c_str());
      continue;
    }
    if (!report->feasible) {
      const bool rescued = search.Search(*spec).ok();
      std::printf("BLOCKED at n%d%s:\n%s\n", report->blocking_node,
                  rescued ? " (a different join order would work)" : "",
                  planner::FormatRejections(cat, report->blocking_rejections)
                      .c_str());
      continue;
    }
    std::printf("%s", report->plan->assignment.ToString(cat, *plan).c_str());
    auto result = executor.Execute(*plan, report->plan->assignment);
    if (!result.ok()) {
      std::printf("execution error: %s\n\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("-> %zu row(s) at %s, %zu transfer(s), %zu byte(s)\n\n",
                result->table.row_count(),
                cat.server(result->result_server).name.c_str(),
                result->network.total_messages(),
                result->network.total_bytes());
  }
  return 0;
}
