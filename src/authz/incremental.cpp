#include "authz/incremental.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::authz {

using chase_internal::EdgeIndex;
using chase_internal::RulePool;

IdSet RuleRelations(const catalog::Catalog& cat, const Authorization& auth) {
  IdSet relations = auth.path.Relations(cat);
  for (const IdSet::value_type a : auth.attributes) {
    relations.Insert(cat.attribute(a).relation);
  }
  return relations;
}

IncrementalClosure::IncrementalClosure(const catalog::Catalog& cat,
                                       ChaseOptions options)
    : cat_(&cat),
      options_(options),
      index_(std::make_unique<EdgeIndex>(cat)) {}

Result<IncrementalClosure> IncrementalClosure::Build(
    const catalog::Catalog& cat, const AuthorizationSet& base,
    const ChaseOptions& options) {
  CISQP_TRACE_SPAN(span, "authz.incremental.build");
  IncrementalClosure inc(cat, options);
  inc.base_ = base;
  const std::size_t servers = cat.server_count();
  inc.canon_.resize(servers);
  inc.derived_.resize(servers, 0);
  for (catalog::ServerId server = 0; server < servers; ++server) {
    CISQP_ASSIGN_OR_RETURN(RulePool pool, inc.RechaseServer(server));
    // Batch semantics: each server chases under a fresh per-server counter,
    // and the whole-closure budget is enforced over the running total in
    // server order — the same two cap sites ChaseClosure has.
    CISQP_RETURN_IF_ERROR(inc.CheckClosureCap());
    inc.canon_[server] = Canonicalize(pool);
    inc.pools_.push_back(std::move(pool));
  }
  AuthorizationSet closed;
  for (catalog::ServerId server = 0; server < servers; ++server) {
    for (const auto& [path, grants] : inc.canon_[server]) {
      for (const IdSet& attrs : grants) {
        CISQP_RETURN_IF_ERROR(
            closed.Add(cat, Authorization{attrs, path, server}));
      }
    }
  }
  inc.closed_ = std::move(closed);
  span.AddAttribute("closed_rules", inc.closed_.size());
  return inc;
}

Result<RulePool> IncrementalClosure::RechaseServer(catalog::ServerId server) {
  RulePool pool(*index_);
  for (const Authorization& auth : base_.ForServer(server)) {
    pool.AddIfNovel(auth.attributes, auth.path);
  }
  // Fresh counter: the cap bounds this from-scratch chase of one server
  // (batch semantics), never chase work accumulated over the object's
  // lifetime — a long edit history must not trip it spuriously. stats_
  // still accumulates the work for reporting.
  ChaseStats local;
  const Status run = chase_internal::RunSemiNaive(*cat_, *index_, pool, 0,
                                                  server, options_, local);
  stats_.iterations += local.iterations;
  stats_.pairs_considered += local.pairs_considered;
  stats_.derived_rules += local.derived_rules;
  CISQP_RETURN_IF_ERROR(run);
  derived_[server] = local.derived_rules;
  return pool;
}

Status IncrementalClosure::CheckClosureCap() const {
  std::size_t total = 0;
  for (const std::size_t d : derived_) total += d;
  if (total > options_.max_derived_rules) {
    return chase_internal::ExceededCap(options_);
  }
  return Status::Ok();
}

IncrementalClosure::CanonicalRules IncrementalClosure::Canonicalize(
    const RulePool& pool) {
  CanonicalRules canon;
  for (const RulePool::Rule& rule : pool.rules()) {
    canon[rule.path].push_back(rule.attrs);
  }
  for (auto& [path, grants] : canon) {
    std::vector<IdSet> kept;
    for (const IdSet& candidate : grants) {
      const bool subsumed =
          std::any_of(grants.begin(), grants.end(), [&](const IdSet& other) {
            return !(other == candidate) && candidate.IsSubsetOf(other);
          });
      if (!subsumed &&
          std::find(kept.begin(), kept.end(), candidate) == kept.end()) {
        kept.push_back(candidate);
      }
    }
    std::sort(kept.begin(), kept.end());
    grants = std::move(kept);
  }
  return canon;
}

Status IncrementalClosure::Publish(catalog::ServerId server,
                                   CanonicalRules next, ClosureDelta& delta) {
  const CanonicalRules& prev = canon_[server];
  // Count the symmetric difference of the two canonical rule sets. Both
  // sides are path-sorted maps of sorted grant vectors, so per-path set
  // differences see everything.
  for (const auto& [path, grants] : next) {
    const auto it = prev.find(path);
    for (const IdSet& attrs : grants) {
      const bool existed =
          it != prev.end() &&
          std::binary_search(it->second.begin(), it->second.end(), attrs);
      if (!existed) ++delta.added_rules;
    }
  }
  for (const auto& [path, grants] : prev) {
    const auto it = next.find(path);
    for (const IdSet& attrs : grants) {
      const bool survives =
          it != next.end() &&
          std::binary_search(it->second.begin(), it->second.end(), attrs);
      if (!survives) ++delta.removed_rules;
    }
  }
  if (delta.added_rules != 0 || delta.removed_rules != 0) {
    delta.servers.Insert(server);
  }
  // A server gaining its first rule (or losing its last) flips the
  // kNoRulesForServer deny reason for every profile probed at it, including
  // profiles over unrelated relations — selective retention is off the
  // table for this edit.
  if (prev.empty() != next.empty()) delta.full = true;

  canon_[server] = std::move(next);
  AuthorizationSet closed;
  for (catalog::ServerId s = 0; s < canon_.size(); ++s) {
    for (const auto& [path, grants] : canon_[s]) {
      for (const IdSet& attrs : grants) {
        CISQP_RETURN_IF_ERROR(closed.Add(*cat_, Authorization{attrs, path, s}));
      }
    }
  }
  closed_ = std::move(closed);
  return Status::Ok();
}

Result<ClosureDelta> IncrementalClosure::AddRule(const Authorization& auth) {
  CISQP_RETURN_IF_ERROR(base_.Add(*cat_, auth));
  CISQP_TRACE_SPAN(span, "authz.incremental.grant");
  CISQP_METRIC_INC("authz.incremental.grants");
  ClosureDelta delta;
  delta.relations = RuleRelations(*cat_, auth);

  RulePool& pool = pools_[auth.server];
  const std::size_t delta_begin = pool.size();
  if (!pool.AddIfNovel(auth.attributes, auth.path)) {
    // Subsumed by an existing closure rule: every derivation through the
    // new rule is subsumed by the corresponding derivation through the
    // subsuming rule, so the canonical closure is unchanged.
    return delta;
  }
  // Seed the counter with this server's prior derived count so the cap
  // sees exactly what a from-scratch chase over the edited base would: the
  // server's existing derivations plus this delta round's — never other
  // servers' work or earlier edits' rechases.
  ChaseStats local;
  local.derived_rules = derived_[auth.server];
  const Status run = chase_internal::RunSemiNaive(
      *cat_, *index_, pool, delta_begin, auth.server, options_, local);
  stats_.iterations += local.iterations;
  stats_.pairs_considered += local.pairs_considered;
  stats_.derived_rules += local.derived_rules - derived_[auth.server];
  CISQP_RETURN_IF_ERROR(run);
  derived_[auth.server] = local.derived_rules;
  CISQP_RETURN_IF_ERROR(CheckClosureCap());
  CISQP_RETURN_IF_ERROR(Publish(auth.server, Canonicalize(pool), delta));
  span.AddAttribute("added_rules", delta.added_rules);
  return delta;
}

Result<ClosureDelta> IncrementalClosure::RevokeRule(const Authorization& auth) {
  CISQP_RETURN_IF_ERROR(base_.Remove(*cat_, auth));
  CISQP_TRACE_SPAN(span, "authz.incremental.revoke");
  CISQP_METRIC_INC("authz.incremental.revokes");
  ClosureDelta delta;
  delta.relations = RuleRelations(*cat_, auth);

  CISQP_ASSIGN_OR_RETURN(RulePool pool, RechaseServer(auth.server));
  CISQP_RETURN_IF_ERROR(CheckClosureCap());
  CanonicalRules next = Canonicalize(pool);
  pools_[auth.server] = std::move(pool);
  CISQP_RETURN_IF_ERROR(Publish(auth.server, std::move(next), delta));
  span.AddAttribute("removed_rules", delta.removed_rules);
  return delta;
}

}  // namespace cisqp::authz
