#include "testcheck/minimizer.hpp"

#include <utility>
#include <vector>

namespace cisqp::testcheck {
namespace {

/// Relations the query references (FROM clause); everything else is
/// droppable without invalidating the query.
IdSet QueryRelations(const Scenario& s) {
  IdSet out;
  for (const catalog::RelationId r : s.query.Relations()) out.Insert(r);
  return out;
}

/// Attributes the query mentions anywhere (select, join atoms, where);
/// dropping any other attribute keeps the query well formed.
IdSet QueryAttributes(const Scenario& s) {
  IdSet out;
  for (const catalog::AttributeId a : s.query.select_list) out.Insert(a);
  for (const plan::JoinStep& step : s.query.joins) {
    for (const algebra::EquiJoinAtom& atom : step.atoms) {
      out.Insert(atom.left);
      out.Insert(atom.right);
    }
  }
  out.UnionWith(s.query.where.ReferencedAttributes());
  return out;
}

}  // namespace

Scenario MinimizeScenario(Scenario failing, const FailurePredicate& fails,
                          const MinimizeOptions& options,
                          MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;

  const auto try_edit = [&](const ScenarioEdit& edit) {
    if (st.candidates_tried >= options.max_candidates) return false;
    ++st.candidates_tried;
    Result<Scenario> candidate = ApplyEdit(failing, edit);
    if (!candidate.ok()) return false;
    if (!fails(*candidate)) return false;
    ++st.candidates_accepted;
    failing = std::move(*candidate);
    return true;
  };

  bool shrunk = true;
  while (shrunk && st.candidates_tried < options.max_candidates) {
    shrunk = false;
    ++st.passes;

    // Join steps, last first: dropping a step also sheds its relation from
    // the query, usually unlocking a relation drop below.
    for (std::size_t i = failing.query.joins.size(); i-- > 0;) {
      ScenarioEdit edit;
      edit.drop_join_steps.push_back(i);
      if (try_edit(edit)) shrunk = true;
    }

    // Relations the query no longer touches (with all their attributes'
    // grants rewritten by ApplyEdit).
    {
      const IdSet used = QueryRelations(failing);
      for (catalog::RelationId r = 0; r < failing.catalog.relation_count();
           ++r) {
        if (used.Contains(r)) continue;
        ScenarioEdit edit;
        edit.drop_relations.Insert(r);
        if (try_edit(edit)) shrunk = true;
      }
    }

    // Individual grants, last first (later grants are usually the random
    // extras; the first ones are the own-relation baseline).
    for (std::size_t i = failing.auths.size(); i-- > 0;) {
      ScenarioEdit edit;
      edit.drop_grants.push_back(i);
      if (try_edit(edit)) shrunk = true;
    }

    // WHERE conjuncts and select columns (keep at least one column).
    for (std::size_t i = failing.query.where.conjuncts().size(); i-- > 0;) {
      ScenarioEdit edit;
      edit.drop_where.push_back(i);
      if (try_edit(edit)) shrunk = true;
    }
    for (std::size_t i = failing.query.select_list.size();
         i-- > 0 && failing.query.select_list.size() > 1;) {
      ScenarioEdit edit;
      edit.drop_select.push_back(i);
      if (try_edit(edit)) shrunk = true;
    }

    // Attributes nothing references anymore.
    {
      const IdSet used = QueryAttributes(failing);
      for (catalog::AttributeId a = 0; a < failing.catalog.attribute_count();
           ++a) {
        if (used.Contains(a)) continue;
        ScenarioEdit edit;
        edit.drop_attributes.Insert(a);
        if (try_edit(edit)) shrunk = true;
      }
    }

    // Data: halve rows to fixpoint (stop once halving stops shedding rows).
    {
      const auto total_rows = [&] {
        std::size_t n = 0;
        for (const auto& relation_rows : failing.rows) {
          n += relation_rows.size();
        }
        return n;
      };
      ScenarioEdit edit;
      edit.halve_rows = true;
      std::size_t before = total_rows();
      while (before > 0 && try_edit(edit)) {
        const std::size_t after = total_rows();
        if (after >= before) break;
        before = after;
        shrunk = true;
      }
    }
  }
  return failing;
}

}  // namespace cisqp::testcheck
