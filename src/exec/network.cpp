#include "exec/network.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace cisqp::exec {

void NetworkStats::Record(TransferRecord record) {
  total_bytes_ += record.bytes;
  total_rows_ += record.rows;
  LinkStats& link = links_[{record.from, record.to}];
  ++link.messages;
  link.rows += record.rows;
  link.bytes += record.bytes;
  CISQP_METRIC_INC("exec.transfers");
  CISQP_METRIC_ADD("exec.rows_shipped", record.rows);
  CISQP_METRIC_ADD("exec.bytes_shipped", record.bytes);
  transfers_.push_back(std::move(record));
}

std::string NetworkStats::Summary(const catalog::Catalog& cat) const {
  std::ostringstream oss;
  oss << total_messages() << " transfer(s), " << total_rows_ << " row(s), "
      << total_bytes_ << " byte(s)\n";
  for (const auto& [link, stats] : links_) {
    oss << "  " << cat.server(link.first).name << " -> "
        << cat.server(link.second).name << ": " << stats.messages
        << " message(s), " << stats.rows << " row(s), " << stats.bytes
        << " byte(s)\n";
  }
  for (const TransferRecord& t : transfers_) {
    oss << "  n" << t.node_id << " " << cat.server(t.from).name << " -> "
        << cat.server(t.to).name << " " << t.rows << " row(s), " << t.bytes
        << " byte(s): " << t.description << "\n";
  }
  return oss.str();
}

}  // namespace cisqp::exec
