// E12 (extension) — the supply-chain scenario under its query workload: the
// model outside the paper's medical domain, federation defined in the DSL.
// Prints per-query feasibility/modes/bytes like E11 and times planning plus
// execution on the second schema shape.
#include "bench_util.hpp"

#include "exec/executor.hpp"
#include "planner/plan_search.hpp"
#include "workload/supply_chain.hpp"

namespace cisqp::bench {
namespace {

void PrintWorkloadTable() {
  auto fed = Unwrap(workload::SupplyChainScenario::Build(), "scenario");
  const catalog::Catalog& cat = fed.catalog;
  exec::Cluster cluster(cat);
  Rng rng(7);
  UnwrapStatus(workload::SupplyChainScenario::PopulateCluster(cluster, fed, {}, rng),
               "populate");

  PrintHeader("E12 / second-domain scenario (extension)",
              "supply-chain federation (DSL-defined): per-query feasibility, "
              "modes, and communication");
  Artifact artifact("supply_chain", "E12 / second-domain scenario (extension)",
                    "supply-chain per-query feasibility, modes, communication");
  std::printf("%-22s %-10s %-18s %-8s %-10s %-8s\n", "query", "feasible",
              "join modes", "xfers", "bytes", "rows");

  planner::SafePlanner planner(cat, fed.authorizations);
  planner::FeasiblePlanSearch search(cat, fed.authorizations);
  exec::DistributedExecutor executor(cluster, fed.authorizations);
  for (const auto& q : workload::SupplyChainScenario::WorkloadQueries()) {
    auto spec = sql::ParseAndBind(cat, q.sql);
    UnwrapStatus(spec.status(), q.name.c_str());
    auto built = plan::PlanBuilder(cat).Build(*spec);
    UnwrapStatus(built.status(), q.name.c_str());
    const auto report = Unwrap(planner.Analyze(*built), q.name.c_str());
    if (!report.feasible) {
      const bool rescued = search.Search(*spec).ok();
      std::printf("%-22s %-10s\n", q.name.c_str(), rescued ? "reorder" : "NO");
      artifact.Row()
          .Value("query", q.name)
          .Value("feasible", rescued ? "reorder" : "no");
      continue;
    }
    std::string modes;
    built->ForEachPreOrder([&](const plan::PlanNode& n) {
      if (n.op != plan::PlanOp::kJoin) return;
      if (!modes.empty()) modes += "+";
      modes += report.plan->assignment.Of(n.id).mode ==
                       planner::ExecutionMode::kSemiJoin
                   ? "semi"
                   : "regular";
    });
    if (modes.empty()) modes = "local";
    const auto run =
        Unwrap(executor.Execute(*built, report.plan->assignment), q.name.c_str());
    std::printf("%-22s %-10s %-18s %-8zu %-10zu %-8zu\n", q.name.c_str(), "yes",
                modes.c_str(), run.network.total_messages(),
                run.network.total_bytes(), run.table.row_count());
    artifact.Row()
        .Value("query", q.name)
        .Value("feasible", "yes")
        .Value("modes", modes)
        .Value("transfers", run.network.total_messages())
        .Value("bytes", run.network.total_bytes())
        .Value("rows", run.table.row_count())
        .Value("duration_us", run.duration_us);
  }
  artifact.Write();
  std::printf("\n");
}

void BM_SupplyChainPlanning(benchmark::State& state) {
  auto fed = Unwrap(workload::SupplyChainScenario::Build(), "scenario");
  std::vector<plan::QueryPlan> plans;
  for (const auto& q : workload::SupplyChainScenario::WorkloadQueries()) {
    auto spec = sql::ParseAndBind(fed.catalog, q.sql);
    if (!spec.ok()) continue;
    auto built = plan::PlanBuilder(fed.catalog).Build(*spec);
    if (built.ok()) plans.push_back(std::move(*built));
  }
  planner::SafePlanner planner(fed.catalog, fed.authorizations);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Analyze(plans[i % plans.size()]));
    ++i;
  }
}
BENCHMARK(BM_SupplyChainPlanning);

void BM_DslParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dsl::ParseFederation(workload::SupplyChainScenario::Dsl()));
  }
}
BENCHMARK(BM_DslParse);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintWorkloadTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
