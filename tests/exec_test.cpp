// Tests for the distributed execution engine: Fig. 5 flows produce correct
// results, communication is accounted, runtime enforcement guards transfers.
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "obs/metrics.hpp"
#include "planner/safe_planner.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"

namespace cisqp::exec {
namespace {

using cisqp::testing::MedicalFixture;
using cisqp::testing::Relation;
using cisqp::testing::Server;
using planner::ExecutionMode;
using planner::FromChild;

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(fix_.cat);
    Rng rng(2026);
    ASSERT_OK(workload::MedicalScenario::PopulateCluster(
        *cluster_, workload::MedicalScenario::DataConfig{500, 0.4, 0.6, 30}, rng));
    plan_ = fix_.PaperPlan();
    planner::SafePlanner planner(fix_.cat, fix_.auths);
    auto sp = planner.Plan(plan_);
    ASSERT_OK(sp.status());
    assignment_ = sp->assignment;
  }

  MedicalFixture fix_;
  std::unique_ptr<Cluster> cluster_;
  plan::QueryPlan plan_;
  planner::Assignment assignment_;
};

TEST_F(ExecTest, ClusterValidatesLoads) {
  Cluster cluster(fix_.cat);
  storage::Table wrong =
      storage::Table::ForRelation(fix_.cat, Relation(fix_.cat, "Hospital"));
  EXPECT_EQ(cluster.LoadTable(Relation(fix_.cat, "Insurance"), wrong).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.LoadTable(99, wrong).code(), StatusCode::kNotFound);
  EXPECT_EQ(cluster.InsertRow(99, {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(cluster.InsertRow(Relation(fix_.cat, "Insurance"),
                              {storage::Value("bad"), storage::Value("p")})
                .code(),
            StatusCode::kInvalidArgument);
  // Unloaded relations read as empty tables with the right header.
  EXPECT_TRUE(cluster.TableOf(Relation(fix_.cat, "Insurance")).empty());
  EXPECT_FALSE(cluster.HasData(Relation(fix_.cat, "Insurance")));
}

TEST_F(ExecTest, DistributedEqualsCentralizedOnPaperQuery) {
  DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult result,
                       executor.Execute(plan_, assignment_));
  ASSERT_OK_AND_ASSIGN(storage::Table reference,
                       ExecuteCentralized(*cluster_, plan_));
  EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, reference));
  EXPECT_GT(result.table.row_count(), 0u);  // data generator guarantees overlap
  EXPECT_EQ(result.result_server, Server(fix_.cat, "S_H"));
}

TEST_F(ExecTest, NetworkAccountingMatchesFig5Flows) {
  DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult result,
                       executor.Execute(plan_, assignment_));
  // n2 regular join ships Insurance once; n1 semi-join ships twice.
  EXPECT_EQ(result.network.total_messages(), 3u);
  EXPECT_GT(result.network.total_bytes(), 0u);
  const auto& transfers = result.network.transfers();
  EXPECT_EQ(transfers[0].node_id, 2);
  EXPECT_EQ(transfers[0].from, Server(fix_.cat, "S_I"));
  EXPECT_EQ(transfers[0].to, Server(fix_.cat, "S_N"));
  EXPECT_EQ(transfers[1].node_id, 1);
  EXPECT_EQ(transfers[2].node_id, 1);
  // Per-link aggregation contains the S_I → S_N link with message, row, and
  // byte counts.
  const auto it = result.network.links().find(
      {Server(fix_.cat, "S_I"), Server(fix_.cat, "S_N")});
  ASSERT_NE(it, result.network.links().end());
  EXPECT_EQ(it->second.messages, 1u);
  EXPECT_EQ(it->second.rows, transfers[0].rows);
  EXPECT_EQ(it->second.bytes, transfers[0].bytes);
  const std::string summary = result.network.Summary(fix_.cat);
  EXPECT_NE(summary.find("S_I -> S_N"), std::string::npos);
  EXPECT_NE(summary.find("message(s)"), std::string::npos);
}

TEST_F(ExecTest, SemiJoinShipsFewerBytesThanRegular) {
  // Execute n1 both ways and compare shipped bytes (the §4 efficiency and
  // security claim: the slave sends only participating tuples).
  DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult semi, executor.Execute(plan_, assignment_));

  planner::Assignment regular = assignment_;
  // Replace n1's semi-join with a regular join at S_H: S_N ships the whole
  // n2 result. That release is NOT authorized under Fig. 3 (S_H has no rule
  // with path exactly {(Holder, Citizen)}) — which is precisely why the
  // planner picked the semi-join. Disable enforcement to measure the bytes
  // the regular join *would* move.
  regular.Set(1, planner::Executor{Server(fix_.cat, "S_H"), std::nullopt,
                                   ExecutionMode::kRegularJoin, FromChild::kRight});
  EXPECT_EQ(executor.Execute(plan_, regular).status().code(),
            StatusCode::kUnauthorized);
  ExecutionOptions lax;
  lax.enforce_releases = false;
  ASSERT_OK_AND_ASSIGN(ExecutionResult full, executor.Execute(plan_, regular, lax));
  EXPECT_TRUE(storage::Table::SameRowMultiset(semi.table, full.table));
  // The semi-join execution of n1 moves fewer bytes across that node.
  std::size_t semi_n1 = 0;
  std::size_t full_n1 = 0;
  for (const TransferRecord& t : semi.network.transfers()) {
    if (t.node_id == 1) semi_n1 += t.bytes;
  }
  for (const TransferRecord& t : full.network.transfers()) {
    if (t.node_id == 1) full_n1 += t.bytes;
  }
  EXPECT_LT(semi_n1, full_n1);
}

TEST_F(ExecTest, RuntimeEnforcementNeverFiresOnSafeAssignments) {
  DistributedExecutor executor(*cluster_, fix_.auths);
  ExecutionOptions options;
  options.enforce_releases = true;
  EXPECT_OK(executor.Execute(plan_, assignment_, options).status());
}

TEST_F(ExecTest, RuntimeEnforcementStopsUnsafeTransfer) {
  // Regular join at S_I for n2 would ship Nat_registry to S_I — not covered
  // by any Fig. 3 authorization.
  planner::Assignment unsafe = assignment_;
  unsafe.Set(2, planner::Executor{Server(fix_.cat, "S_I"), std::nullopt,
                                  ExecutionMode::kRegularJoin, FromChild::kLeft});
  unsafe.Set(1, planner::Executor{Server(fix_.cat, "S_H"), Server(fix_.cat, "S_I"),
                                  ExecutionMode::kSemiJoin, FromChild::kRight});
  DistributedExecutor executor(*cluster_, fix_.auths);
  const auto result = executor.Execute(plan_, unsafe);
  EXPECT_EQ(result.status().code(), StatusCode::kUnauthorized);

  // With enforcement off, the (unsafe) plan still computes correctly —
  // demonstrating exactly what the authorization layer prevents.
  ExecutionOptions lax;
  lax.enforce_releases = false;
  ASSERT_OK_AND_ASSIGN(ExecutionResult lax_result, executor.Execute(plan_, unsafe, lax));
  ASSERT_OK_AND_ASSIGN(storage::Table reference, ExecuteCentralized(*cluster_, plan_));
  EXPECT_TRUE(storage::Table::SameRowMultiset(lax_result.table, reference));
}

TEST_F(ExecTest, MidPlanDenialStopsAllLaterTransfers) {
  // A denial in the middle of an execution must (a) fail the query with a
  // typed kUnauthorized, (b) count one enforcement denial, and (c) leave no
  // transfer after the denied one in the network log. Delivery to S_N is
  // the denied release (rule 14 lacks Physician), so the three plan
  // transfers complete and the fourth — the delivery — never happens.
  obs::MetricsRegistry::Get().Reset();
  obs::MetricsRegistry::Get().Enable();
  NetworkStats observed;
  ExecutionOptions options;
  options.requestor = Server(fix_.cat, "S_N");
  options.network_out = &observed;
  DistributedExecutor executor(*cluster_, fix_.auths);
  const auto result = executor.Execute(plan_, assignment_, options);
  obs::MetricsRegistry::Get().Disable();

  EXPECT_EQ(result.status().code(), StatusCode::kUnauthorized);
  EXPECT_EQ(obs::MetricsRegistry::Get().Counter("exec.enforcement_denials"),
            1u);
  // Exactly the three in-plan transfers; the denied delivery was never
  // recorded, and nothing shipped after it.
  ASSERT_EQ(observed.total_messages(), 3u);
  for (const TransferRecord& t : observed.transfers()) {
    EXPECT_FALSE(t.node_id == 0 && t.to == Server(fix_.cat, "S_N"))
        << "denied delivery appears in the transfer log";
  }
  EXPECT_EQ(observed.transfers().back().node_id, 1);  // semi-join step 4
}

TEST_F(ExecTest, RequestorDeliveryShipsAndChecks) {
  DistributedExecutor executor(*cluster_, fix_.auths);
  // Under Fig. 3 no server except the computing master S_H may view the
  // result profile (S_N's rule 14 lacks Physician): delivery to S_N is an
  // unauthorized release.
  ExecutionOptions to_sn;
  to_sn.requestor = Server(fix_.cat, "S_N");
  EXPECT_EQ(executor.Execute(plan_, assignment_, to_sn).status().code(),
            StatusCode::kUnauthorized);

  // Delivery to the computing master itself moves nothing.
  ExecutionOptions to_sh;
  to_sh.requestor = Server(fix_.cat, "S_H");
  ASSERT_OK_AND_ASSIGN(ExecutionResult at_master,
                       executor.Execute(plan_, assignment_, to_sh));
  EXPECT_EQ(at_master.result_server, Server(fix_.cat, "S_H"));
  EXPECT_EQ(at_master.network.total_messages(), 3u);

  // Granting S_D the exact result view makes the delivery legal: one extra
  // transfer, result resident at the requestor.
  authz::AuthorizationSet extended = fix_.auths;
  ASSERT_OK(extended.Add(
      fix_.cat, "S_D", {"Patient", "Physician", "Plan", "HealthAid"},
      {{"Holder", "Citizen"}, {"Citizen", "Patient"}}));
  DistributedExecutor executor2(*cluster_, extended);
  ExecutionOptions to_sd;
  to_sd.requestor = Server(fix_.cat, "S_D");
  ASSERT_OK_AND_ASSIGN(ExecutionResult result,
                       executor2.Execute(plan_, assignment_, to_sd));
  EXPECT_EQ(result.result_server, Server(fix_.cat, "S_D"));
  EXPECT_EQ(result.network.total_messages(), 4u);
}

TEST_F(ExecTest, SemiJoinMasterFromLeftAlsoWorks) {
  // Mirror scenario: craft a plan where the master comes from the left
  // child, exercising the [S_l, S_r] flow end to end.
  catalog::Catalog cat;
  const auto s0 = cat.AddServer("s0").value();
  const auto s1 = cat.AddServer("s1").value();
  CISQP_CHECK(cat.AddRelation("L", s0, {{"LK", catalog::ValueType::kInt64},
                                        {"LV", catalog::ValueType::kInt64}}, {"LK"}).ok());
  CISQP_CHECK(cat.AddRelation("R", s1, {{"RK", catalog::ValueType::kInt64},
                                        {"RV", catalog::ValueType::kInt64}}, {"RK"}).ok());
  ASSERT_OK(cat.AddJoinEdge("LK", "RK"));
  authz::AuthorizationSet auths;
  ASSERT_OK(auths.Add(cat, "s0", {"LK", "LV", "RK", "RV"}, {{"LK", "RK"}}));
  ASSERT_OK(auths.Add(cat, "s1", {"LK"}, {}));

  Cluster cluster(cat);
  for (std::int64_t i = 0; i < 20; ++i) {
    ASSERT_OK(cluster.InsertRow(cat.FindRelation("L").value(), {storage::Value(i), storage::Value(i * 10)}));
    if (i % 2 == 0) {
      ASSERT_OK(cluster.InsertRow(cat.FindRelation("R").value(), {storage::Value(i), storage::Value(i * 100)}));
    }
  }

  auto spec = sql::ParseAndBind(cat, "SELECT LV, RV FROM L JOIN R ON LK = RK");
  ASSERT_OK(spec.status());
  ASSERT_OK_AND_ASSIGN(plan::QueryPlan plan, plan::PlanBuilder(cat).Build(*spec));
  planner::SafePlanner planner(cat, auths);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp, planner.Plan(plan));
  int join_id = -1;
  plan.ForEachPreOrder([&](const plan::PlanNode& n) {
    if (n.op == plan::PlanOp::kJoin) join_id = n.id;
  });
  ASSERT_EQ(sp.assignment.Of(join_id).mode, ExecutionMode::kSemiJoin);
  ASSERT_EQ(sp.assignment.Of(join_id).origin, FromChild::kLeft);

  DistributedExecutor executor(cluster, auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult result, executor.Execute(plan, sp.assignment));
  ASSERT_OK_AND_ASSIGN(storage::Table reference, ExecuteCentralized(cluster, plan));
  EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, reference));
  EXPECT_EQ(result.table.row_count(), 10u);
}

TEST_F(ExecTest, PerServerLoadIsAccounted) {
  DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult result,
                       executor.Execute(plan_, assignment_));
  // Fig. 7 execution: S_N computes the n2 regular join plus the semi-join
  // step 3; S_H computes the Hospital projection, the semi-join steps 1 and
  // 5, and the final projection; S_I only serves its base relation.
  const auto load_of = [&](const char* name) {
    const auto it = result.load.find(Server(fix_.cat, name));
    return it == result.load.end() ? ServerLoad{} : it->second;
  };
  EXPECT_GE(load_of("S_N").operations, 2u);
  EXPECT_GE(load_of("S_H").operations, 4u);
  EXPECT_EQ(load_of("S_I").operations, 0u);
  EXPECT_EQ(load_of("S_D").operations, 0u);
  EXPECT_GT(load_of("S_H").rows_produced, 0u);
}

TEST_F(ExecTest, SelectDistinctEliminatesDuplicates) {
  // Plans (the Insurance Plan column) repeat heavily; DISTINCT collapses
  // them to the handful of plan names in both execution paths.
  auto spec = sql::ParseAndBind(fix_.cat, "SELECT DISTINCT Plan FROM Insurance");
  ASSERT_OK(spec.status());
  EXPECT_TRUE(spec->distinct);
  ASSERT_OK_AND_ASSIGN(plan::QueryPlan plan,
                       plan::PlanBuilder(fix_.cat).Build(*spec));
  planner::SafePlanner planner(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(planner::SafePlan sp, planner.Plan(plan));
  DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult distinct_result,
                       executor.Execute(plan, sp.assignment));
  EXPECT_LE(distinct_result.table.row_count(), 4u);  // 4 plan names exist
  EXPECT_GT(distinct_result.table.row_count(), 0u);

  auto plain = sql::ParseAndBind(fix_.cat, "SELECT Plan FROM Insurance");
  ASSERT_OK(plain.status());
  ASSERT_OK_AND_ASSIGN(plan::QueryPlan plain_plan,
                       plan::PlanBuilder(fix_.cat).Build(*plain));
  ASSERT_OK_AND_ASSIGN(planner::SafePlan plain_sp, planner.Plan(plain_plan));
  ASSERT_OK_AND_ASSIGN(ExecutionResult plain_result,
                       executor.Execute(plain_plan, plain_sp.assignment));
  EXPECT_GT(plain_result.table.row_count(), distinct_result.table.row_count());

  // The centralized reference agrees.
  ASSERT_OK_AND_ASSIGN(storage::Table reference,
                       ExecuteCentralized(*cluster_, plan));
  EXPECT_TRUE(storage::Table::SameRowMultiset(distinct_result.table, reference));
}

TEST_F(ExecTest, EmptyRelationsFlowThroughAllModes) {
  // Zero-row inputs must travel through both join flows without incident:
  // empty transfers, empty results, no enforcement anomalies.
  Cluster empty_cluster(fix_.cat);
  DistributedExecutor executor(empty_cluster, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult result,
                       executor.Execute(plan_, assignment_));
  EXPECT_EQ(result.table.row_count(), 0u);
  EXPECT_EQ(result.table.column_count(), 4u);
  // The flows still run: 3 transfers, all zero-byte payloads aside from
  // empty tables.
  EXPECT_EQ(result.network.total_messages(), 3u);
  EXPECT_EQ(result.network.total_rows(), 0u);
  ASSERT_OK_AND_ASSIGN(storage::Table reference,
                       ExecuteCentralized(empty_cluster, plan_));
  EXPECT_TRUE(storage::Table::SameRowMultiset(result.table, reference));
}

TEST_F(ExecTest, DisjointDataYieldsEmptyJoin) {
  // All relations populated but with non-overlapping keys.
  Cluster cluster(fix_.cat);
  ASSERT_OK(cluster.InsertRow(Relation(fix_.cat, "Insurance"),
                              {storage::Value(std::int64_t{1}), storage::Value("p")}));
  ASSERT_OK(cluster.InsertRow(Relation(fix_.cat, "Nat_registry"),
                              {storage::Value(std::int64_t{2}), storage::Value("a")}));
  ASSERT_OK(cluster.InsertRow(
      Relation(fix_.cat, "Hospital"),
      {storage::Value(std::int64_t{3}), storage::Value("d"), storage::Value("dr")}));
  DistributedExecutor executor(cluster, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult result, executor.Execute(plan_, assignment_));
  EXPECT_EQ(result.table.row_count(), 0u);
}

TEST_F(ExecTest, ExecutorRejectsMalformedInput) {
  DistributedExecutor executor(*cluster_, fix_.auths);
  EXPECT_EQ(executor.Execute(plan::QueryPlan{}, assignment_).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(executor.Execute(plan_, planner::Assignment(2)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExecTest, SemiJoinSlaveEqualToMasterIsRejectedNotFatal) {
  // A malformed assignment with slave == master used to reach Ship's
  // colocated-transfer CHECK and abort the process; it must instead come
  // back as a typed kInvalidArgument through Execute.
  planner::Assignment bad = assignment_;
  const planner::Executor n1 = assignment_.Of(1);
  ASSERT_EQ(n1.mode, ExecutionMode::kSemiJoin);
  bad.Set(1, planner::Executor{n1.master, n1.master, n1.mode, n1.origin});
  DistributedExecutor executor(*cluster_, fix_.auths);
  const auto result = executor.Execute(plan_, bad);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("slave must differ"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(ExecTest, NetworkOutIsNotDuplicatedOnSuccess) {
  // On success the transfer log lives solely in ExecutionResult::network;
  // the failure-path sink must come back empty, not as a second copy.
  NetworkStats observed;
  observed.Record(TransferRecord{7, 0, 1, 1, 1, "stale from a prior run"});
  ExecutionOptions options;
  options.network_out = &observed;
  DistributedExecutor executor(*cluster_, fix_.auths);
  ASSERT_OK_AND_ASSIGN(ExecutionResult result,
                       executor.Execute(plan_, assignment_, options));
  EXPECT_EQ(result.network.total_messages(), 3u);
  EXPECT_EQ(observed.total_messages(), 0u);
}

}  // namespace
}  // namespace cisqp::exec
