// Tests for the shared worker pool (common/thread_pool).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace cisqp {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, ThreadCountMatchesRequest) {
  EXPECT_EQ(ThreadPool(1).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(4).thread_count(), 4u);
  EXPECT_EQ(ThreadPool(0).thread_count(), ThreadPool::HardwareConcurrency());
}

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 500;
    std::vector<std::atomic<int>> visits(kN);
    pool.ParallelFor(kN, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesZeroAndOneItems) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  // threads=1 must execute on the calling thread, in index order — this is
  // the exact-sequential-reproduction contract the chase and plan search
  // rely on.
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.ParallelFor(10, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstTaskError) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](std::size_t i) {
                                  if (i == 13) throw std::runtime_error("bad");
                                  ++completed;
                                }),
               std::runtime_error);
  // The pool keeps draining the remaining indices (no cancellation), so all
  // non-throwing indices still ran and the pool stays usable.
  EXPECT_EQ(completed.load(), 63);
  int after = 0;
  pool.ParallelFor(5, [&](std::size_t) { ++after; });
  EXPECT_EQ(after, 5);
}

TEST(ThreadPoolTest, CallerParticipatesInParallelFor) {
  // A pool of size N uses the caller plus N-1 workers: with threads=2 at
  // most two distinct thread ids touch the work.
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(200, [&](std::size_t) {
    const std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_LE(ids.size(), 2u);
  EXPECT_GE(ids.size(), 1u);
}

}  // namespace
}  // namespace cisqp
