#include "testcheck/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "dsl/federation_dsl.hpp"
#include "sql/binder.hpp"

namespace cisqp::testcheck {
namespace {

/// Renders one cell as a repro-file literal.
void RenderValue(std::ostringstream& oss, const storage::Value& v) {
  if (v.is_null()) {
    oss << "null";
  } else if (v.is_int64()) {
    oss << v.AsInt64();
  } else if (v.is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
    oss << buf;
    // Guarantee the literal parses back as a double, not an int64.
    if (std::string_view(buf).find_first_of(".eE") == std::string_view::npos) {
      oss << ".0";
    }
  } else {
    oss << '"';
    for (const char c : v.AsString()) {
      if (c == '"' || c == '\\') oss << '\\';
      oss << c;
    }
    oss << '"';
  }
}

/// Parses one repro-file literal from `text` at `pos` (after skipping
/// spaces); advances `pos` past it.
Result<storage::Value> ParseValue(std::string_view text, std::size_t& pos) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos >= text.size()) return InvalidArgumentError("truncated row literal");
  if (text[pos] == '"') {
    std::string out;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out += text[pos++];
    }
    if (pos >= text.size()) return InvalidArgumentError("unterminated string literal");
    ++pos;  // closing quote
    return storage::Value(std::move(out));
  }
  const std::size_t start = pos;
  while (pos < text.size() && text[pos] != ',' && text[pos] != ')') ++pos;
  std::string token(text.substr(start, pos - start));
  while (!token.empty() && std::isspace(static_cast<unsigned char>(token.back()))) {
    token.pop_back();
  }
  if (token == "null") return storage::Value::Null();
  if (token.empty()) return InvalidArgumentError("empty row literal");
  if (token.find_first_of(".eE") != std::string::npos) {
    return storage::Value(std::strtod(token.c_str(), nullptr));
  }
  return storage::Value(
      static_cast<std::int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
}

bool StartsWithWord(std::string_view line, std::string_view word) {
  return line.size() > word.size() && line.substr(0, word.size()) == word &&
         std::isspace(static_cast<unsigned char>(line[word.size()]));
}

std::string_view Trimmed(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<exec::Cluster> Scenario::MakeCluster() const {
  exec::Cluster cluster(catalog);
  for (catalog::RelationId r = 0; r < catalog.relation_count(); ++r) {
    if (r >= rows.size()) break;
    for (const storage::Row& row : rows[r]) {
      CISQP_RETURN_IF_ERROR(cluster.InsertRow(r, row));
    }
  }
  return cluster;
}

plan::StatsCatalog Scenario::ComputeStats() const {
  auto cluster = MakeCluster();
  CISQP_CHECK_MSG(cluster.ok(), cluster.status().ToString());
  return workload::ComputeStats(*cluster);
}

std::string Scenario::ToReproText() const {
  std::ostringstream oss;
  oss << "# cisqp-fuzz repro v1\n";
  oss << "seed " << seed << "\n";
  oss << dsl::SerializeFederation(catalog, &auths, nullptr);
  for (catalog::RelationId r = 0; r < catalog.relation_count(); ++r) {
    if (r >= rows.size()) break;
    for (const storage::Row& row : rows[r]) {
      oss << "row " << catalog.relation(r).name << " (";
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c != 0) oss << ", ";
        RenderValue(oss, row[c]);
      }
      oss << ");\n";
    }
  }
  oss << "query " << query.ToString(catalog) << "\n";
  return oss.str();
}

Result<Scenario> GenerateScenario(const ScenarioConfig& config,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.seed = seed;
  workload::Federation fed = workload::GenerateFederation(config.federation, rng);
  s.auths = workload::GenerateAuthorizations(fed.catalog, config.authz, rng);
  CISQP_ASSIGN_OR_RETURN(s.query,
                         workload::GenerateQuery(fed.catalog, config.query, rng));
  exec::Cluster cluster(fed.catalog);
  CISQP_RETURN_IF_ERROR(
      workload::PopulateCluster(cluster, fed, config.data, rng));
  s.rows.resize(fed.catalog.relation_count());
  for (catalog::RelationId r = 0; r < fed.catalog.relation_count(); ++r) {
    s.rows[r] = cluster.TableOf(r).rows();
  }
  s.catalog = std::move(fed.catalog);
  return s;
}

Result<Scenario> ParseReproText(std::string_view text) {
  // Split the line-oriented directives off; the rest is federation DSL.
  std::ostringstream dsl_text;
  std::uint64_t seed = 0;
  std::string sql;
  std::vector<std::pair<std::string, storage::Row>> raw_rows;

  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    const std::size_t nl = text.find('\n', line_start);
    const std::string_view raw_line = text.substr(
        line_start, nl == std::string_view::npos ? text.size() - line_start
                                                 : nl - line_start);
    line_start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    const std::string_view line = Trimmed(raw_line);
    if (line.empty()) continue;
    if (StartsWithWord(line, "seed")) {
      seed = std::strtoull(std::string(Trimmed(line.substr(4))).c_str(),
                           nullptr, 10);
    } else if (StartsWithWord(line, "query")) {
      sql = std::string(Trimmed(line.substr(5)));
    } else if (StartsWithWord(line, "row")) {
      std::string_view rest = Trimmed(line.substr(3));
      const std::size_t open = rest.find('(');
      if (open == std::string_view::npos) {
        return InvalidArgumentError("row directive without '(': " +
                                    std::string(line));
      }
      const std::string relation(Trimmed(rest.substr(0, open)));
      storage::Row row;
      std::size_t pos = open + 1;
      while (true) {
        while (pos < rest.size() &&
               std::isspace(static_cast<unsigned char>(rest[pos]))) {
          ++pos;
        }
        if (pos < rest.size() && rest[pos] == ')') break;
        CISQP_ASSIGN_OR_RETURN(storage::Value v, ParseValue(rest, pos));
        row.push_back(std::move(v));
        while (pos < rest.size() &&
               std::isspace(static_cast<unsigned char>(rest[pos]))) {
          ++pos;
        }
        if (pos < rest.size() && rest[pos] == ',') {
          ++pos;
        } else {
          break;
        }
      }
      if (pos >= rest.size() || rest[pos] != ')') {
        return InvalidArgumentError("row directive without ')': " +
                                    std::string(line));
      }
      raw_rows.emplace_back(relation, std::move(row));
    } else {
      dsl_text << raw_line << "\n";
    }
  }

  if (sql.empty()) return InvalidArgumentError("repro has no query directive");
  CISQP_ASSIGN_OR_RETURN(dsl::ParsedFederation fed,
                         dsl::ParseFederation(dsl_text.str()));
  Scenario s;
  s.seed = seed;
  s.auths = std::move(fed.authorizations);
  s.catalog = std::move(fed.catalog);
  CISQP_ASSIGN_OR_RETURN(s.query, sql::ParseAndBind(s.catalog, sql));
  s.rows.resize(s.catalog.relation_count());
  for (auto& [relation, row] : raw_rows) {
    CISQP_ASSIGN_OR_RETURN(const catalog::RelationId rel,
                           s.catalog.FindRelation(relation));
    if (row.size() != s.catalog.relation(rel).attributes.size()) {
      return InvalidArgumentError("row arity mismatch for relation " + relation);
    }
    s.rows[rel].push_back(std::move(row));
  }
  return s;
}

Result<Scenario> ApplyEdit(const Scenario& s, const ScenarioEdit& edit) {
  const catalog::Catalog& old_cat = s.catalog;
  const auto relation_dropped = [&](catalog::RelationId r) {
    return edit.drop_relations.Contains(r);
  };
  const auto attribute_dropped = [&](catalog::AttributeId a) {
    return edit.drop_attributes.Contains(a) ||
           relation_dropped(old_cat.attribute(a).relation);
  };

  Scenario out;
  out.seed = s.seed;

  // Rebuild the catalog: surviving servers/relations/attributes keep their
  // names; ids renumber. Servers survive unconditionally (an unused server
  // is itself scenario content — it may hold grants).
  for (catalog::ServerId sv = 0; sv < old_cat.server_count(); ++sv) {
    CISQP_RETURN_IF_ERROR(out.catalog.AddServer(old_cat.server(sv).name).status());
  }
  for (catalog::RelationId r = 0; r < old_cat.relation_count(); ++r) {
    if (relation_dropped(r)) continue;
    const catalog::RelationDef& rel = old_cat.relation(r);
    std::vector<catalog::AttributeSpec> specs;
    std::vector<std::string> key;
    for (catalog::AttributeId a : rel.attributes) {
      if (attribute_dropped(a)) continue;
      const catalog::AttributeDef& attr = old_cat.attribute(a);
      specs.push_back(catalog::AttributeSpec{attr.name, attr.type});
      const bool was_key = std::find(rel.primary_key.begin(),
                                     rel.primary_key.end(),
                                     a) != rel.primary_key.end();
      if (was_key) key.push_back(attr.name);
    }
    if (specs.empty()) {
      return InvalidArgumentError("relation '" + rel.name +
                                  "' would lose all attributes");
    }
    if (key.empty()) key.push_back(specs.front().name);
    CISQP_RETURN_IF_ERROR(
        out.catalog.AddRelation(rel.name, rel.server, specs, key).status());
  }

  // Old attribute id -> new attribute id, by name.
  const auto remap = [&](catalog::AttributeId a) -> Result<catalog::AttributeId> {
    if (attribute_dropped(a)) {
      return NotFoundError("attribute '" + old_cat.attribute(a).name +
                           "' was dropped");
    }
    return out.catalog.FindAttribute(old_cat.attribute(a).name);
  };

  for (const catalog::JoinEdge& e : old_cat.join_edges()) {
    if (attribute_dropped(e.left) || attribute_dropped(e.right)) continue;
    CISQP_ASSIGN_OR_RETURN(const catalog::AttributeId l, remap(e.left));
    CISQP_ASSIGN_OR_RETURN(const catalog::AttributeId r, remap(e.right));
    const Status status = out.catalog.AddJoinEdge(l, r);
    if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
      return status;
    }
  }

  // Rebuild the policy. A grant that loses a path endpoint, all its
  // attributes, or its Def. 3.1 validity is dropped whole — the minimizer
  // re-checks the candidate anyway.
  const std::vector<authz::Authorization> old_grants = s.auths.All();
  const std::set<std::size_t> dropped_grants(edit.drop_grants.begin(),
                                             edit.drop_grants.end());
  for (std::size_t i = 0; i < old_grants.size(); ++i) {
    if (dropped_grants.count(i) != 0) continue;
    const authz::Authorization& g = old_grants[i];
    authz::Authorization mapped;
    mapped.server = g.server;
    bool keep = true;
    for (IdSet::value_type a : g.attributes) {
      if (attribute_dropped(static_cast<catalog::AttributeId>(a))) continue;
      CISQP_ASSIGN_OR_RETURN(const catalog::AttributeId na,
                             remap(static_cast<catalog::AttributeId>(a)));
      mapped.attributes.Insert(na);
    }
    std::vector<authz::JoinAtom> atoms;
    for (const authz::JoinAtom& atom : g.path.atoms()) {
      if (attribute_dropped(atom.first) || attribute_dropped(atom.second)) {
        keep = false;
        break;
      }
      CISQP_ASSIGN_OR_RETURN(const catalog::AttributeId na, remap(atom.first));
      CISQP_ASSIGN_OR_RETURN(const catalog::AttributeId nb, remap(atom.second));
      atoms.push_back(authz::JoinAtom::Make(na, nb));
    }
    if (!keep || mapped.attributes.empty()) continue;
    mapped.path = authz::JoinPath::FromAtoms(std::move(atoms));
    const Status status = out.auths.Add(out.catalog, std::move(mapped));
    if (!status.ok() && status.code() != StatusCode::kAlreadyExists &&
        status.code() != StatusCode::kInvalidArgument) {
      return status;
    }
  }

  // Rebuild the query.
  const std::set<std::size_t> dropped_steps(edit.drop_join_steps.begin(),
                                            edit.drop_join_steps.end());
  const std::set<std::size_t> dropped_select(edit.drop_select.begin(),
                                             edit.drop_select.end());
  const std::set<std::size_t> dropped_where(edit.drop_where.begin(),
                                            edit.drop_where.end());
  out.query.distinct = s.query.distinct;
  if (relation_dropped(s.query.first_relation)) {
    return InvalidArgumentError("query's first relation was dropped");
  }
  CISQP_ASSIGN_OR_RETURN(
      out.query.first_relation,
      out.catalog.FindRelation(old_cat.relation(s.query.first_relation).name));
  IdSet query_relations{s.query.first_relation};
  for (std::size_t i = 0; i < s.query.joins.size(); ++i) {
    if (dropped_steps.count(i) != 0) continue;
    const plan::JoinStep& step = s.query.joins[i];
    if (relation_dropped(step.relation)) {
      return InvalidArgumentError("query references a dropped relation");
    }
    plan::JoinStep mapped;
    CISQP_ASSIGN_OR_RETURN(
        mapped.relation,
        out.catalog.FindRelation(old_cat.relation(step.relation).name));
    for (const algebra::EquiJoinAtom& atom : step.atoms) {
      // Atoms whose left side joined against a dropped step's relation go
      // away with that step; atoms on dropped attributes go away too.
      if (attribute_dropped(atom.left) || attribute_dropped(atom.right)) {
        continue;
      }
      if (!query_relations.Contains(old_cat.attribute(atom.left).relation)) {
        continue;
      }
      CISQP_ASSIGN_OR_RETURN(const catalog::AttributeId l, remap(atom.left));
      CISQP_ASSIGN_OR_RETURN(const catalog::AttributeId r, remap(atom.right));
      mapped.atoms.push_back(algebra::EquiJoinAtom{l, r});
    }
    if (mapped.atoms.empty()) {
      return InvalidArgumentError("join step would lose all atoms");
    }
    out.query.joins.push_back(std::move(mapped));
    query_relations.Insert(step.relation);
  }
  for (std::size_t i = 0; i < s.query.select_list.size(); ++i) {
    if (dropped_select.count(i) != 0) continue;
    if (attribute_dropped(s.query.select_list[i])) continue;
    CISQP_ASSIGN_OR_RETURN(const catalog::AttributeId a,
                           remap(s.query.select_list[i]));
    out.query.select_list.push_back(a);
  }
  std::vector<algebra::Comparison> conjuncts;
  const std::vector<algebra::Comparison>& old_conjuncts =
      s.query.where.conjuncts();
  for (std::size_t i = 0; i < old_conjuncts.size(); ++i) {
    if (dropped_where.count(i) != 0) continue;
    const algebra::Comparison& c = old_conjuncts[i];
    if (attribute_dropped(c.lhs)) continue;
    algebra::Comparison mapped = c;
    CISQP_ASSIGN_OR_RETURN(mapped.lhs, remap(c.lhs));
    if (c.rhs_is_attribute()) {
      const auto rhs = std::get<catalog::AttributeId>(c.rhs);
      if (attribute_dropped(rhs)) continue;
      CISQP_ASSIGN_OR_RETURN(const catalog::AttributeId nr, remap(rhs));
      mapped.rhs = nr;
    }
    conjuncts.push_back(std::move(mapped));
  }
  out.query.where = algebra::Predicate(std::move(conjuncts));
  CISQP_RETURN_IF_ERROR(out.query.Validate(out.catalog));

  // Rebuild the data, dropping removed columns.
  out.rows.resize(out.catalog.relation_count());
  for (catalog::RelationId r = 0; r < old_cat.relation_count(); ++r) {
    if (relation_dropped(r) || r >= s.rows.size()) continue;
    CISQP_ASSIGN_OR_RETURN(const catalog::RelationId nr,
                           out.catalog.FindRelation(old_cat.relation(r).name));
    std::vector<std::size_t> kept_columns;
    const std::vector<catalog::AttributeId>& attrs =
        old_cat.relation(r).attributes;
    for (std::size_t c = 0; c < attrs.size(); ++c) {
      if (!attribute_dropped(attrs[c])) kept_columns.push_back(c);
    }
    for (std::size_t i = 0; i < s.rows[r].size(); ++i) {
      if (edit.halve_rows && (i % 2) != 0) continue;
      storage::Row row;
      row.reserve(kept_columns.size());
      for (const std::size_t c : kept_columns) row.push_back(s.rows[r][i][c]);
      out.rows[nr].push_back(std::move(row));
    }
  }
  return out;
}

Result<Scenario> CloneScenario(const Scenario& s) {
  return ApplyEdit(s, ScenarioEdit{});
}

}  // namespace cisqp::testcheck
