// Policy analysis helpers for audits and reviews:
//  * the base-visibility matrix — per (server, relation), how much of the
//    base relation the policy releases unconditionally (empty-path rules);
//  * policy diffs — the rules one policy has and another lacks, e.g. raw vs
//    chase-closed, or before vs after a grant review.
#pragma once

#include <string>
#include <vector>

#include "authz/authorization.hpp"

namespace cisqp::authz {

/// How much of a base relation a server may view through empty-path rules.
enum class BaseVisibility : std::uint8_t {
  kNone,     ///< no attribute
  kPartial,  ///< some attributes
  kFull,     ///< the whole schema
};

std::string_view BaseVisibilityName(BaseVisibility v) noexcept;

/// matrix[server][relation] — unconditional visibility under `auths`.
/// Join-path rules do not count: they release associations, not the base
/// relation (Def. 3.3 demands exact path equality).
std::vector<std::vector<BaseVisibility>> BaseVisibilityMatrix(
    const catalog::Catalog& cat, const AuthorizationSet& auths);

/// Aligned text rendering of the matrix ("F" full, "p" partial, "-" none).
std::string VisibilityMatrixToString(
    const catalog::Catalog& cat,
    const std::vector<std::vector<BaseVisibility>>& matrix);

/// Rules present in exactly one of two policies.
struct PolicyDiff {
  std::vector<Authorization> only_in_a;
  std::vector<Authorization> only_in_b;

  bool Identical() const noexcept {
    return only_in_a.empty() && only_in_b.empty();
  }
};

PolicyDiff DiffPolicies(const AuthorizationSet& a, const AuthorizationSet& b);

}  // namespace cisqp::authz
