// DistributedExecutor: runs a query tree plan under an executor assignment,
// materializing the exact Fig. 5 flows — whole-relation shipments for
// regular joins, the 5-step semi-join protocol — over the simulated cluster,
// with per-transfer network accounting and runtime release enforcement.
//
// Runtime enforcement is the second line of defense behind the planner: every
// *physical* shipment is checked against the authorization set with the
// profile of the shipped relation before the receiving server sees a byte.
// A safe assignment never trips it (tests assert this); a hand-crafted unsafe
// assignment is stopped at the first unauthorized transfer.
#pragma once

#include <cstdint>

#include "authz/authorization.hpp"
#include "exec/cluster.hpp"
#include "exec/network.hpp"
#include "planner/assignment.hpp"
#include "planner/mode_views.hpp"

namespace cisqp::exec {

struct ExecutionOptions {
  /// Check every physical transfer against the authorization set.
  bool enforce_releases = true;
  /// Deliver the final result to this server (checked as a release when it
  /// differs from the root master).
  std::optional<catalog::ServerId> requestor;
};

/// Compute performed at one server during a query (operator invocations, the
/// rows they produced, and the wall-clock time spent producing them) — the
/// load-distribution side of the accounting, complementing NetworkStats'
/// communication side.
struct ServerLoad {
  std::size_t operations = 0;
  std::size_t rows_produced = 0;
  std::int64_t busy_us = 0;  ///< wall-clock microseconds in operator code
};

struct ExecutionResult {
  storage::Table table;
  catalog::ServerId result_server = catalog::kInvalidId;
  NetworkStats network;
  std::map<catalog::ServerId, ServerLoad> load;  ///< per executing server
  std::int64_t duration_us = 0;  ///< total wall-clock execution time
};

class DistributedExecutor {
 public:
  DistributedExecutor(const Cluster& cluster,
                      const authz::Policy& auths)
      : cluster_(cluster), auths_(auths) {}

  /// Executes `plan` under `assignment`. Fails with kUnauthorized when
  /// enforcement trips, kInvalidArgument on malformed plans/assignments.
  Result<ExecutionResult> Execute(const plan::QueryPlan& plan,
                                  const planner::Assignment& assignment,
                                  const ExecutionOptions& options = {}) const;

 private:
  const Cluster& cluster_;
  const authz::Policy& auths_;
};

/// Reference evaluator: runs `plan` as if all relations were local, with no
/// authorization or distribution concerns. The distributed execution of a
/// valid assignment must return the same row multiset (tests rely on this).
Result<storage::Table> ExecuteCentralized(const Cluster& cluster,
                                          const plan::QueryPlan& plan);

}  // namespace cisqp::exec
