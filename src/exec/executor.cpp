#include "exec/executor.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "algebra/vectorized.hpp"
#include "authz/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::exec {
namespace {

/// An intermediate result and the server currently holding it. Batches are
/// views over shared columnar tables: a leaf borrows the cluster-resident
/// columnar form without copying, σ/π stay zero-copy views, and only joins
/// and shipments materialize.
struct Located {
  algebra::ColumnarBatch batch;
  catalog::ServerId server = catalog::kInvalidId;
};

/// Process-shared worker pools, one per requested thread count, built on
/// first use and reused for the life of the process. Executions that ask
/// for `threads` parallelism without supplying ExecutionOptions::pool all
/// share one pool here instead of spawning (and joining) a private pool per
/// query — under a concurrent serving workload the per-query spawn cost and
/// the thread-count blow-up (N requests × M workers) were both bugs.
/// ThreadPool is thread-safe for concurrent ParallelFor callers: each call
/// enqueues its own tasks and blocks on its own completion latch.
ThreadPool& SharedQueryPool(std::size_t threads) {
  static std::mutex mu;
  static std::map<std::size_t, std::unique_ptr<ThreadPool>>* pools =
      new std::map<std::size_t, std::unique_ptr<ThreadPool>>();
  const std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& slot = (*pools)[threads];
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(threads);
  return *slot;
}

/// Chrome-export lane of a federation server. Lane 1 stays the default
/// (coordinator/planner) process; servers get stable lanes above it.
int LaneOf(catalog::ServerId server) noexcept {
  return static_cast<int>(server) + 2;
}

class Run {
 public:
  Run(const Cluster& cluster, const authz::Policy& auths,
      const plan::QueryPlan& plan, planner::Assignment assignment,
      const ExecutionOptions& options)
      : cluster_(cluster), auths_(auths), plan_(plan),
        assignment_(std::move(assignment)), options_(options),
        profile_(options.profile),
        profiles_(planner::ComputeNodeProfiles(cluster.catalog(), plan)) {
    // Resolve the kernel parallelism once per execution: an explicit shared
    // pool wins, otherwise threads>1 borrows the process-shared pool for
    // that thread count — never a private pool per query (concurrent
    // requests would each respawn workers; see SharedQueryPool above).
    // threads=1 leaves ctx_.pool null — the kernels' exact sequential path.
    ctx_ = options.morsel;
    ctx_.pool = options.pool;
    if (ctx_.pool == nullptr && options.threads > 1) {
      ctx_.pool = &SharedQueryPool(options.threads);
    }
  }

  Result<ExecutionResult> Execute(const plan::PlanNode& root) {
    Result<ExecutionResult> result = ExecuteWithRecovery(root);
    if (options_.network_out != nullptr) {
      if (result.ok()) {
        // On success the transfer log already moved into result->network;
        // leave the failure-path sink empty instead of duplicating the log
        // (per-transfer descriptions and all) into a second copy.
        *options_.network_out = NetworkStats{};
      } else {
        // Publish the transfer log when execution failed: enforcement and
        // fault tests assert what was — and was not — shipped.
        *options_.network_out = std::move(network_);
      }
    }
    return result;
  }

 private:
  Result<ExecutionResult> ExecuteWithRecovery(const plan::PlanNode& root) {
    CISQP_TRACE_SPAN(span, "exec.execute");
    CISQP_METRIC_INC("exec.executions");
    if (profile_ != nullptr || span.active()) {
      // One query id shared by the profile, the root span, and every
      // transfer's wire context — allocated lazily so unobserved executions
      // never touch the counter.
      query_id_ = profile_ != nullptr && profile_->query_id != 0
                      ? profile_->query_id
                      : obs::QueryProfile::NextQueryId();
      if (profile_ != nullptr) profile_->query_id = query_id_;
    }
    if (span.active()) {
      span.AddAttribute("query_id", query_id_);
      // Name the per-server lanes so federation servers render as named
      // processes in the Chrome export.
      obs::Tracer& tracer = obs::Tracer::Get();
      for (std::size_t s = 0; s < cat().server_count(); ++s) {
        const auto id = static_cast<catalog::ServerId>(s);
        tracer.SetProcessName(LaneOf(id), "server:" + cat().server(id).name);
      }
    }
    const std::int64_t start_us = obs::NowMicros();
    Result<Located> located = ExecOnce(root);
    // Authorization-aware failover: a permanent server failure excludes the
    // dead servers and replans over the survivors. Every round excludes at
    // least one new server, so the loop is bounded by the federation size.
    while (!located.ok() &&
           located.status().code() == StatusCode::kUnavailable &&
           options_.failover && options_.faults != nullptr) {
      std::vector<catalog::ServerId> newly_dead;
      for (catalog::ServerId s : options_.faults->PermanentlyDown(clock_us_)) {
        if (std::find(recovery_.excluded_servers.begin(),
                      recovery_.excluded_servers.end(),
                      s) == recovery_.excluded_servers.end()) {
          newly_dead.push_back(s);
        }
      }
      // Pure transient exhaustion (link flake, finite outage outlasting the
      // retry budget): no server to exclude, failover cannot help.
      if (newly_dead.empty()) break;
      recovery_.excluded_servers.insert(recovery_.excluded_servers.end(),
                                        newly_dead.begin(), newly_dead.end());
      CISQP_RETURN_IF_ERROR(ReplanOverSurvivors());
      located = ExecOnce(root);
    }
    if (!located.ok()) return located.status();

    ExecutionResult result;
    result.table = located->batch.MaterializeRows();
    result.result_server = located->server;
    result.network = std::move(network_);
    result.load = std::move(load_);
    result.duration_us = obs::NowMicros() - start_us;
    result.recovery = std::move(recovery_);
    if (profile_ != nullptr) profile_->duration_us = result.duration_us;
    if (span.active()) {
      span.AddAttribute("result_rows", result.table.row_count());
      span.AddAttribute("transfers", result.network.total_messages());
      span.AddAttribute("bytes_shipped", result.network.total_bytes());
      if (result.recovery.retries > 0) {
        span.AddAttribute("retries", result.recovery.retries);
      }
      if (result.recovery.failovers > 0) {
        span.AddAttribute("failovers", result.recovery.failovers);
      }
    }
    return result;
  }

  /// One full execution attempt under the current assignment, including the
  /// final delivery to the requestor.
  Result<Located> ExecOnce(const plan::PlanNode& root) {
    CISQP_ASSIGN_OR_RETURN(Located located, Exec(root));
    if (options_.requestor && *options_.requestor != located.server) {
      CISQP_RETURN_IF_ERROR(ShipBatch(root.id, located.server,
                                      *options_.requestor, located.batch,
                                      ProfileOf(root.id),
                                      "final result delivered to requestor",
                                      obs::AuditSite::kRequestor));
      located.server = *options_.requestor;
    }
    return located;
  }

  /// Re-runs candidate selection (Find_candidates / Assign_ex) over the
  /// surviving servers. The probes audit under the failover site; runtime
  /// enforcement still re-checks Def. 3.3 on every replanned transfer, so
  /// no unsafe release can slip through even a buggy replan.
  Status ReplanOverSurvivors() {
    CISQP_TRACE_SPAN(span, "exec.failover_replan");
    CISQP_METRIC_INC("exec.failovers");
    ++recovery_.failovers;
    if (span.active()) {
      std::string excluded;
      for (catalog::ServerId s : recovery_.excluded_servers) {
        if (!excluded.empty()) excluded += ',';
        excluded += cat().server(s).name;
      }
      span.AddAttribute("excluded", excluded);
    }
    planner::SafePlannerOptions opts = options_.failover_planner;
    opts.excluded_servers = recovery_.excluded_servers;
    opts.audit_site = obs::AuditSite::kFailover;
    if (options_.requestor) opts.requestor = options_.requestor;
    planner::SafePlanner planner(cat(), auths_, opts);
    Result<planner::SafePlan> replanned = planner.Plan(plan_);
    if (!replanned.ok()) {
      return UnavailableError(
          "failover could not replan over the surviving servers: " +
          replanned.status().message());
    }
    assignment_ = std::move(replanned->assignment);
    return Status::Ok();
  }

  const catalog::Catalog& cat() const { return cluster_.catalog(); }

  const authz::Profile& ProfileOf(int node_id) const {
    return profiles_[static_cast<std::size_t>(node_id)];
  }

  /// Accounts one operator invocation producing `rows` at `server` after
  /// `busy_us` microseconds of operator wall-clock time.
  void Account(catalog::ServerId server, std::size_t rows,
               std::int64_t busy_us = 0) {
    ServerLoad& load = load_[server];
    ++load.operations;
    load.rows_produced += rows;
    load.busy_us += busy_us;
    CISQP_METRIC_OBSERVE("exec.operator_rows", static_cast<double>(rows));
  }

  /// Fills the profile slot of `node` for one operator invocation, plus the
  /// per-operator metrics histograms. Counters accumulate across failover
  /// re-runs (invocations tells them apart).
  void ProfileOp(const plan::PlanNode& node, std::string_view op,
                 catalog::ServerId server, std::uint64_t rows_in_left,
                 std::uint64_t rows_in_right, std::uint64_t rows_out,
                 std::int64_t time_us,
                 const algebra::KernelStats* kernels = nullptr) {
    if (profile_ != nullptr) {
      obs::OperatorStats& stats = profile_->OpAt(node.id);
      stats.op = std::string(op);
      stats.server = cat().server(server).name;
      ++stats.invocations;
      ++stats.batches;
      stats.rows_in_left += rows_in_left;
      stats.rows_in_right += rows_in_right;
      stats.rows_out += rows_out;
      stats.time_us += time_us;
      if (kernels != nullptr) {
        stats.hash_build_rows += kernels->hash_build_rows;
        stats.hash_probe_rows += kernels->hash_probe_rows;
        stats.hash_matches += kernels->hash_matches;
        stats.dict_filter_lookups += kernels->dict_filter_lookups;
        stats.dict_filter_hits += kernels->dict_filter_hits;
        stats.rows_hashed += kernels->rows_hashed;
        stats.morsels += kernels->morsels;
        stats.partitions += kernels->partitions;
        if (stats.worker_busy_us.size() < kernels->worker_busy_us.size()) {
          stats.worker_busy_us.resize(kernels->worker_busy_us.size(), 0);
        }
        for (std::size_t w = 0; w < kernels->worker_busy_us.size(); ++w) {
          stats.worker_busy_us[w] += kernels->worker_busy_us[w];
        }
      }
    }
    // Per-operator metric names are built dynamically, so guard explicitly:
    // the CISQP_METRIC_OBSERVE macro would evaluate the concatenation even
    // while metrics are disabled.
    if constexpr (obs::kObsCompiledIn) {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
      if (reg.enabled()) {
        const std::string prefix = "exec.op." + std::string(op);
        reg.Observe(prefix + ".rows_out", static_cast<double>(rows_out));
        reg.Observe(prefix + ".time_us", static_cast<double>(time_us));
      }
    }
  }

  /// Runs one transfer through the fault model: transient drops re-send
  /// with exponential backoff on the virtual clock, a permanently-down
  /// endpoint aborts as kUnavailable (failover's cue).
  Status Deliver(obs::Span& span, catalog::ServerId from,
                 catalog::ServerId to) {
    const RetryPolicy& retry = options_.retry;
    std::int64_t backoff = retry.initial_backoff_us;
    for (int attempt = 1;; ++attempt) {
      const ShipFate fate = options_.faults->OnShip(from, to, clock_us_);
      switch (fate.outcome) {
        case ShipOutcome::kDelivered:
          if (attempt > 1 && span.active()) {
            span.AddAttribute("attempts", attempt);
          }
          return Status::Ok();
        case ShipOutcome::kServerDown:
          CISQP_METRIC_INC("exec.permanent_faults");
          if (span.active()) {
            span.AddAttribute("fault", "server_down");
            span.AddAttribute("down_server", cat().server(fate.down_server).name);
          }
          return UnavailableError("server '" +
                                  cat().server(fate.down_server).name +
                                  "' is permanently down");
        case ShipOutcome::kTransientFault:
          ++recovery_.transient_faults;
          CISQP_METRIC_INC("exec.transient_faults");
          if (attempt >= retry.max_attempts) {
            if (span.active()) span.AddAttribute("fault", "retries_exhausted");
            return UnavailableError(
                "transfer " + cat().server(from).name + " -> " +
                cat().server(to).name + " dropped " +
                std::to_string(attempt) + " time(s); retries exhausted");
          }
          if (clock_us_ + backoff > retry.deadline_us) {
            if (span.active()) span.AddAttribute("fault", "deadline_exceeded");
            return UnavailableError(
                "per-query deadline (" + std::to_string(retry.deadline_us) +
                "us) exceeded while backing off for " +
                cat().server(from).name + " -> " + cat().server(to).name);
          }
          clock_us_ += backoff;
          recovery_.backoff_wait_us += backoff;
          backoff = std::min<std::int64_t>(
              static_cast<std::int64_t>(static_cast<double>(backoff) *
                                        retry.backoff_multiplier),
              retry.max_backoff_us);
          ++recovery_.retries;
          CISQP_METRIC_INC("exec.retries");
          break;
      }
    }
  }

  /// Ships `batch` after materializing it, and rebinds the batch to the
  /// materialized table so downstream operators reuse the shipped form
  /// instead of re-gathering the view.
  Status ShipBatch(int node_id, catalog::ServerId from, catalog::ServerId to,
                   algebra::ColumnarBatch& batch, const authz::Profile& profile,
                   std::string description,
                   obs::AuditSite site = obs::AuditSite::kExecutor) {
    std::shared_ptr<const storage::ColumnarTable> wire = batch.Materialize();
    batch = algebra::ColumnarBatch::FromTable(wire);
    return Ship(node_id, from, to, *wire, profile, std::move(description), site);
  }

  /// Moves `table` from one server to another: accounts the transfer and,
  /// under enforcement, checks (and audits) that the receiver may view
  /// `profile`. The Def. 3.3 check runs before any delivery attempt — a
  /// denied transfer is never even offered to the network.
  Status Ship(int node_id, catalog::ServerId from, catalog::ServerId to,
              const storage::ColumnarTable& table,
              const authz::Profile& profile, std::string description,
              obs::AuditSite site = obs::AuditSite::kExecutor) {
    CISQP_CHECK_MSG(from != to, "Ship called for a colocated transfer");
    CISQP_TRACE_SPAN(span, "exec.ship");
    const std::size_t rows = table.row_count();
    const std::size_t bytes = table.WireSizeBytes();
    if (span.active()) {
      span.SetLane(LaneOf(from));
      span.AddAttribute("node", node_id);
      span.AddAttribute("from", cat().server(from).name);
      span.AddAttribute("to", cat().server(to).name);
      span.AddAttribute("rows", rows);
      span.AddAttribute("bytes", bytes);
      span.AddAttribute("what", description);
      span.AddAttribute("query_id", query_id_);
    }
    if (options_.enforce_releases &&
        !authz::AuditedCanView(cat(), auths_, profile, to, site, node_id,
                               description)) {
      CISQP_METRIC_INC("exec.enforcement_denials");
      // Attempted-but-denied: the span keeps the rows/bytes that would have
      // moved, tagged so traces distinguish it from a completed shipment.
      if (span.active()) span.AddAttribute("denied", true);
      return UnauthorizedError(
          "runtime enforcement: server '" + cat().server(to).name +
          "' is not authorized to view " + profile.ToString(cat()) +
          " (node n" + std::to_string(node_id) + ": " + description + ")");
    }
    if (options_.faults != nullptr) {
      CISQP_RETURN_IF_ERROR(Deliver(span, from, to));
    }
    if (profile_ != nullptr) {
      obs::TransferStats transfer;
      transfer.node_id = node_id;
      transfer.from = cat().server(from).name;
      transfer.to = cat().server(to).name;
      transfer.rows = rows;
      transfer.bytes = bytes;
      transfer.query_id = query_id_;
      transfer.parent_span = span.index();
      transfer.what = description;
      profile_->transfers.push_back(std::move(transfer));
      profile_->OpAt(node_id).bytes_shipped += bytes;
    }
    network_.Record(TransferRecord{node_id, from, to, rows, bytes,
                                   std::move(description), query_id_,
                                   span.index()});
    return Status::Ok();
  }

  Result<Located> Exec(const plan::PlanNode& node) {
    CISQP_TRACE_SPAN(span, "exec.node");
    const planner::Executor& ex = assignment_.Of(node.id);
    if (span.active()) {
      span.SetLane(LaneOf(ex.master));
      span.AddAttribute("node", node.id);
      span.AddAttribute("op", plan::PlanOpName(node.op));
      span.AddAttribute("master", cat().server(ex.master).name);
    }
    switch (node.op) {
      case plan::PlanOp::kRelation: {
        const catalog::ServerId home = cat().relation(node.relation).server;
        if (ex.master != home) {
          return InvalidArgumentError("leaf n" + std::to_string(node.id) +
                                      " not assigned to its home server");
        }
        Located leaf;
        leaf.batch = algebra::ColumnarBatch::FromTable(
            cluster_.ColumnarOf(node.relation));
        leaf.server = home;
        ProfileOp(node, "relation", home, 0, 0, leaf.batch.row_count(), 0);
        return leaf;
      }
      case plan::PlanOp::kProject: {
        CISQP_ASSIGN_OR_RETURN(Located child, Exec(*node.left));
        if (ex.master != child.server) {
          return InvalidArgumentError("unary node n" + std::to_string(node.id) +
                                      " must run at its operand's server");
        }
        const std::uint64_t in_rows = child.batch.row_count();
        algebra::KernelStats kernels;
        const std::int64_t t0 = obs::NowMicros();
        {
          const algebra::KernelStatsScope kernel_scope(
              profile_ != nullptr ? &kernels : nullptr);
          CISQP_ASSIGN_OR_RETURN(
              algebra::ColumnarBatch out,
              algebra::ProjectBatch(child.batch, node.projection,
                                    node.distinct, ctx_));
          const std::int64_t dt = obs::NowMicros() - t0;
          Account(child.server, out.row_count(), dt);
          ProfileOp(node, "project", child.server, in_rows, 0, out.row_count(),
                    dt, &kernels);
          return Located{std::move(out), child.server};
        }
      }
      case plan::PlanOp::kSelect: {
        CISQP_ASSIGN_OR_RETURN(Located child, Exec(*node.left));
        if (ex.master != child.server) {
          return InvalidArgumentError("unary node n" + std::to_string(node.id) +
                                      " must run at its operand's server");
        }
        const std::uint64_t in_rows = child.batch.row_count();
        algebra::KernelStats kernels;
        const std::int64_t t0 = obs::NowMicros();
        {
          const algebra::KernelStatsScope kernel_scope(
              profile_ != nullptr ? &kernels : nullptr);
          CISQP_ASSIGN_OR_RETURN(
              algebra::ColumnarBatch out,
              algebra::SelectBatch(child.batch, node.predicate, ctx_));
          const std::int64_t dt = obs::NowMicros() - t0;
          Account(child.server, out.row_count(), dt);
          ProfileOp(node, "select", child.server, in_rows, 0, out.row_count(),
                    dt, &kernels);
          return Located{std::move(out), child.server};
        }
      }
      case plan::PlanOp::kJoin:
        return ExecJoin(node, ex);
    }
    return InternalError("unknown plan operator");
  }

  Result<Located> ExecJoin(const plan::PlanNode& node,
                           const planner::Executor& ex) {
    CISQP_ASSIGN_OR_RETURN(Located left, Exec(*node.left));
    CISQP_ASSIGN_OR_RETURN(Located right, Exec(*node.right));
    const authz::Profile& lp = ProfileOf(node.left->id);
    const authz::Profile& rp = ProfileOf(node.right->id);
    const planner::JoinModeViews views =
        planner::ComputeJoinModeViews(lp, rp, node.join_atoms);
    const std::uint64_t in_left = left.batch.row_count();
    const std::uint64_t in_right = right.batch.row_count();
    algebra::KernelStats kernels;
    const algebra::KernelStatsScope kernel_scope(
        profile_ != nullptr ? &kernels : nullptr);

    switch (ex.mode) {
      case planner::ExecutionMode::kLocal:
        return InvalidArgumentError("join node n" + std::to_string(node.id) +
                                    " cannot have mode 'local'");
      case planner::ExecutionMode::kRegularJoin: {
        // The operand not computed by the master ships in full (Fig. 5 rows
        // [Sl,NULL] / [Sr,NULL]); a third-party master receives both.
        if (left.server != ex.master) {
          CISQP_RETURN_IF_ERROR(ShipBatch(node.id, left.server, ex.master,
                                          left.batch, lp,
                                          "regular join: left operand"));
        }
        if (right.server != ex.master) {
          CISQP_RETURN_IF_ERROR(ShipBatch(node.id, right.server, ex.master,
                                          right.batch, rp,
                                          "regular join: right operand"));
        }
        const std::int64_t t0 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(
            algebra::ColumnarBatch out,
            algebra::JoinBatches(left.batch, right.batch, node.join_atoms,
                                 ctx_));
        const std::int64_t dt = obs::NowMicros() - t0;
        Account(ex.master, out.row_count(), dt);
        ProfileOp(node, "join", ex.master, in_left, in_right, out.row_count(),
                  dt, &kernels);
        return Located{std::move(out), ex.master};
      }
      case planner::ExecutionMode::kSemiJoin: {
        if (!ex.slave) {
          return InvalidArgumentError("semi-join n" + std::to_string(node.id) +
                                      " without a slave");
        }
        if (*ex.slave == ex.master) {
          // A malformed assignment, not a crash: the 5-step protocol ships
          // between master and slave, and Ship CHECK-fails on a colocated
          // transfer. Reject before any step runs.
          return InvalidArgumentError(
              "semi-join n" + std::to_string(node.id) +
              " slave must differ from its master ('" +
              cat().server(ex.master).name + "')");
        }
        const bool master_is_left = ex.origin == planner::FromChild::kLeft;
        Located& master_op = master_is_left ? left : right;
        Located& slave_op = master_is_left ? right : left;
        if (master_op.server != ex.master || slave_op.server != *ex.slave) {
          return InvalidArgumentError(
              "semi-join n" + std::to_string(node.id) +
              " executor does not match the servers holding its operands");
        }

        // Step 1: the master projects its join attributes (distinct).
        std::vector<catalog::AttributeId> master_join_cols(
            master_is_left ? views.left_join_attrs.begin() : views.right_join_attrs.begin(),
            master_is_left ? views.left_join_attrs.end() : views.right_join_attrs.end());
        const std::int64_t t1 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(
            algebra::ColumnarBatch projected,
            algebra::ProjectBatch(master_op.batch, master_join_cols,
                                  /*distinct=*/true, ctx_));
        std::int64_t op_time_us = obs::NowMicros() - t1;
        Account(ex.master, projected.row_count(), op_time_us);

        // Step 2: ship it to the slave.
        CISQP_RETURN_IF_ERROR(ShipBatch(
            node.id, ex.master, *ex.slave, projected,
            master_is_left ? views.right_slave_view : views.left_slave_view,
            "semi-join step 2: master join-attribute projection"));

        // Step 3: the slave joins with its operand.
        std::vector<algebra::EquiJoinAtom> atoms = node.join_atoms;
        if (!master_is_left) {
          // HashJoin wants atoms oriented (left-input attr, right-input attr);
          // here the shipped projection carries the *right* child's attrs.
          for (algebra::EquiJoinAtom& atom : atoms) std::swap(atom.left, atom.right);
        }
        const std::int64_t t3 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(
            algebra::ColumnarBatch reduced,
            algebra::JoinBatches(projected, slave_op.batch, atoms, ctx_));
        const std::int64_t dt3 = obs::NowMicros() - t3;
        op_time_us += dt3;
        Account(*ex.slave, reduced.row_count(), dt3);

        // Step 4: ship the reduced operand back to the master.
        CISQP_RETURN_IF_ERROR(ShipBatch(
            node.id, *ex.slave, ex.master, reduced,
            master_is_left ? views.left_master_view : views.right_master_view,
            "semi-join step 4: reduced slave operand"));

        // Step 5: the master completes the join on the shared join columns.
        const std::int64_t t5 = obs::NowMicros();
        CISQP_ASSIGN_OR_RETURN(
            algebra::ColumnarBatch joined,
            algebra::NaturalJoinBatches(master_op.batch, reduced, ctx_));

        // Restore the canonical left++right column order expected upstream.
        std::vector<catalog::AttributeId> out_cols =
            node.left->OutputAttributes(cat());
        const std::vector<catalog::AttributeId> right_cols =
            node.right->OutputAttributes(cat());
        out_cols.insert(out_cols.end(), right_cols.begin(), right_cols.end());
        CISQP_ASSIGN_OR_RETURN(algebra::ColumnarBatch out,
                               algebra::ProjectBatch(joined, out_cols));
        const std::int64_t dt5 = obs::NowMicros() - t5;
        op_time_us += dt5;
        Account(ex.master, out.row_count(), dt5);
        ProfileOp(node, "semi_join", ex.master, in_left, in_right,
                  out.row_count(), op_time_us, &kernels);
        return Located{std::move(out), ex.master};
      }
    }
    return InternalError("unknown execution mode");
  }

  const Cluster& cluster_;
  const authz::Policy& auths_;
  const plan::QueryPlan& plan_;
  planner::Assignment assignment_;  ///< by value: failover replaces it
  const ExecutionOptions& options_;
  algebra::MorselContext ctx_;             ///< kernel parallelism, resolved
  obs::QueryProfile* profile_ = nullptr;   ///< opt-in per-query profile sink
  std::int64_t query_id_ = -1;             ///< trace context on every transfer
  std::vector<authz::Profile> profiles_;
  NetworkStats network_;
  std::map<catalog::ServerId, ServerLoad> load_;
  RecoveryStats recovery_;
  std::int64_t clock_us_ = 0;  ///< virtual query time (advanced by backoff)
};

Result<algebra::ColumnarBatch> CentralizedRec(const Cluster& cluster,
                                              const plan::PlanNode& node) {
  switch (node.op) {
    case plan::PlanOp::kRelation:
      return algebra::ColumnarBatch::FromTable(
          cluster.ColumnarOf(node.relation));
    case plan::PlanOp::kProject: {
      CISQP_ASSIGN_OR_RETURN(algebra::ColumnarBatch child,
                             CentralizedRec(cluster, *node.left));
      return algebra::ProjectBatch(child, node.projection, node.distinct);
    }
    case plan::PlanOp::kSelect: {
      CISQP_ASSIGN_OR_RETURN(algebra::ColumnarBatch child,
                             CentralizedRec(cluster, *node.left));
      return algebra::SelectBatch(child, node.predicate);
    }
    case plan::PlanOp::kJoin: {
      CISQP_ASSIGN_OR_RETURN(algebra::ColumnarBatch left,
                             CentralizedRec(cluster, *node.left));
      CISQP_ASSIGN_OR_RETURN(algebra::ColumnarBatch right,
                             CentralizedRec(cluster, *node.right));
      return algebra::JoinBatches(left, right, node.join_atoms);
    }
  }
  return InternalError("unknown plan operator");
}

}  // namespace

Result<ExecutionResult> DistributedExecutor::Execute(
    const plan::QueryPlan& plan, const planner::Assignment& assignment,
    const ExecutionOptions& options) const {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  CISQP_RETURN_IF_ERROR(plan.Validate(cluster_.catalog()));
  if (assignment.size() != static_cast<std::size_t>(plan.node_count())) {
    return InvalidArgumentError("assignment size does not match plan");
  }
  Run run(cluster_, auths_, plan, assignment, options);
  return run.Execute(*plan.root());
}

Result<storage::Table> ExecuteCentralized(const Cluster& cluster,
                                          const plan::QueryPlan& plan) {
  if (plan.empty()) return InvalidArgumentError("empty plan");
  CISQP_RETURN_IF_ERROR(plan.Validate(cluster.catalog()));
  CISQP_ASSIGN_OR_RETURN(algebra::ColumnarBatch out,
                         CentralizedRec(cluster, *plan.root()));
  return out.MaterializeRows();
}

}  // namespace cisqp::exec
