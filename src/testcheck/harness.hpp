// The differential check: production pipeline vs brute-force oracles over
// one scenario (DESIGN.md §11.1).
//
// One CheckScenario call runs the full production path — chase closure,
// feasibility-aware plan search, distributed execution with runtime
// enforcement and audit — sequentially and in parallel, with and without
// fault schedules, and asserts against the independent oracles:
//
//   chase      the semi-naïve parallel closure equals the naïve fixpoint
//              (canonical minimized form), at every thread count;
//   plan       SafePlanner-driven search and the exhaustive enumerator agree
//              on feasibility, pre- and post-chase, and the exhaustive
//              minimum cost never exceeds the chosen plan's cost (the greedy
//              heuristic cannot beat the true optimum under one cost model);
//   safety     the chosen assignment survives the independent release-based
//              verifier, and a successful execution leaves zero denied
//              executor/requestor audit entries;
//   results    the distributed result multiset equals the single-site
//              reference evaluation, and re-executing with a morsel-parallel
//              worker pool returns the byte-identical table;
//   faults     under every configured fault seed, execution either returns
//              the identical multiset or a typed kUnavailable — never
//              kUnauthorized, never wrong rows;
//   profile    re-executing with a QueryProfile attached returns the
//              byte-identical table (profiling is observation only), and the
//              recorded per-operator cardinalities conserve: every child's
//              rows_out equals its parent's observed rows_in.
//   edits      a deterministic grant/revoke script replayed through
//              FrontDoor::AddRule/RevokeRule (incremental delta-chase,
//              selective cache retention) matches a full-recompute oracle
//              after every edit: identical canonical closures, identical
//              CanView deny reasons, and byte-identical served answers —
//              success tables, kInfeasible negative-cache verdicts, and
//              runtime-enforcement audit entries alike.
//
// Disagreements are reported as typed Mismatches, never as errors: an error
// return means the harness itself could not run (malformed scenario), which
// callers treat separately from a red verdict.
#pragma once

#include <string>
#include <vector>

#include "testcheck/scenario.hpp"

namespace cisqp::testcheck {

/// What the differential check found wrong. The kind drives the minimizer's
/// failure predicate: a candidate scenario "still fails" when it reproduces
/// a mismatch of the same kind.
enum class MismatchKind : std::uint8_t {
  kChaseClosure,     ///< production closure != naïve fixpoint
  kFeasibility,      ///< search and exhaustive enumerator disagree
  kCost,             ///< exhaustive minimum exceeds the chosen plan's cost
  kUnsafePlan,       ///< chosen assignment fails the release verifier
  kThreadDivergence, ///< threads=1 and threads=N results differ
  kResultMultiset,   ///< distributed result != reference evaluation
  kAuditViolation,   ///< denied executor/requestor entry on a success
  kFaultSafety,      ///< faulted run returned wrong rows or kUnauthorized
  kProfileDivergence,///< profiling changed the result, or rows don't conserve
  kServingDivergence,///< cached serving answer differs from the cold answer
  kPolicyEditDivergence, ///< incremental policy edit differs from recompute
  kPipelineError,    ///< a production stage failed with an unexpected status
};

std::string_view MismatchKindName(MismatchKind kind) noexcept;

struct Mismatch {
  MismatchKind kind = MismatchKind::kPipelineError;
  std::string detail;

  std::string ToString() const;
};

struct CheckOptions {
  /// Path-length cap shared by the production chase and the naïve oracle
  /// (both must see the same derivation space). Nonzero keeps the naïve
  /// fixpoint polynomial on fuzz-sized schemas.
  std::size_t chase_max_path_atoms = 3;
  /// Join orders examined by both the production search and the oracle.
  std::size_t max_orders = 24;
  /// The parallel arms: every parallelizable stage (chase, plan search,
  /// morsel-driven execution) additionally runs with this thread count and
  /// must reproduce the sequential result exactly — execution byte-for-byte.
  std::size_t threads = 2;
  /// Fault schedules for the fault arm (empty disables it). Each seed runs
  /// one execution with this per-link drop probability.
  std::vector<std::uint64_t> fault_seeds;
  double fault_drop_probability = 0.3;
  /// Run the execution arms (distributed vs reference, audit, faults).
  bool check_execution = true;
  /// Run the serving arm: the scenario query goes through a FrontDoor twice
  /// — cold, then plan-cache-hit — and the answers must match exactly:
  /// byte-identical tables on success, identical typed statuses on failure,
  /// and the serving feasibility verdict must agree with the pipeline's.
  /// Requires check_execution (the arm needs the loaded cluster).
  bool check_serving = true;
  /// Run the policy-edit arm: `policy_edit_count` grants/revokes drawn
  /// deterministically from the scenario seed are replayed through
  /// FrontDoor::AddRule/RevokeRule (incremental closure maintenance plus
  /// selective plan-cache/CanView retention) and, after every edit, the
  /// closure, the CanView deny reasons, and the served answers (twice — so
  /// retained cache hits are exercised) must be byte-identical to a
  /// from-scratch FrontDoor over the edited rule set. Requires
  /// check_execution (the arm serves against the loaded cluster).
  bool check_policy_edits = true;
  std::size_t policy_edit_count = 4;
};

struct CheckReport {
  std::vector<Mismatch> mismatches;
  /// Production feasibility verdict under the chased policy.
  bool feasible = false;
  std::int64_t production_us = 0;  ///< wall time in production stages
  std::int64_t oracle_us = 0;      ///< wall time in oracle stages

  bool ok() const noexcept { return mismatches.empty(); }
  /// One mismatch per line; "ok" when green.
  std::string ToString() const;
};

/// Runs every differential arm over `s`. Fails only when the scenario itself
/// is unusable; oracle disagreements come back as mismatches.
Result<CheckReport> CheckScenario(const Scenario& s,
                                  const CheckOptions& options = {});

}  // namespace cisqp::testcheck
