// Cardinality statistics for the join-order optimizer (two-step optimization,
// paper §5 end: "First, the query optimizer identifies a good plan; second,
// it assigns operations to the servers"). Step one needs estimates; this is
// the textbook System-R style model: per-relation row counts and per-column
// distinct counts, uniformity and independence assumed.
#pragma once

#include <map>

#include "catalog/catalog.hpp"
#include "storage/table.hpp"

namespace cisqp::plan {

/// Statistics of one relation instance.
struct RelationStats {
  double rows = 1000.0;
  std::map<catalog::AttributeId, double> distinct;

  /// Distinct count of `attr`, defaulting to `rows` (key-like) when unknown.
  double DistinctOf(catalog::AttributeId attr) const {
    const auto it = distinct.find(attr);
    return it == distinct.end() ? rows : it->second;
  }
};

/// Per-relation statistics for one federation.
class StatsCatalog {
 public:
  StatsCatalog() = default;

  void Set(catalog::RelationId rel, RelationStats stats) {
    stats_[rel] = std::move(stats);
  }

  /// Stats of `rel`; a default RelationStats when never set.
  const RelationStats& Of(catalog::RelationId rel) const {
    static const RelationStats kDefault;
    const auto it = stats_.find(rel);
    return it == stats_.end() ? kDefault : it->second;
  }

  bool Has(catalog::RelationId rel) const { return stats_.contains(rel); }

  /// Exact statistics scanned from a materialized table.
  static RelationStats FromTable(const storage::Table& table);

 private:
  std::map<catalog::RelationId, RelationStats> stats_;
};

}  // namespace cisqp::plan
