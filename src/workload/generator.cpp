#include "workload/generator.hpp"

#include <algorithm>
#include <numeric>
#include <string>

namespace cisqp::workload {
namespace {

/// Plain union-find for grouping join-connected attributes.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Int64 attributes of `rel` (only they participate in join edges).
std::vector<catalog::AttributeId> IntAttributes(const catalog::Catalog& cat,
                                                catalog::RelationId rel) {
  std::vector<catalog::AttributeId> out;
  for (catalog::AttributeId a : cat.relation(rel).attributes) {
    if (cat.attribute(a).type == catalog::ValueType::kInt64) out.push_back(a);
  }
  return out;
}

/// Join edges between two specific relations.
std::vector<catalog::JoinEdge> EdgesBetween(const catalog::Catalog& cat,
                                            catalog::RelationId a,
                                            catalog::RelationId b) {
  std::vector<catalog::JoinEdge> out;
  for (const catalog::JoinEdge& e : cat.join_edges()) {
    const catalog::RelationId rl = cat.attribute(e.left).relation;
    const catalog::RelationId rr = cat.attribute(e.right).relation;
    if ((rl == a && rr == b) || (rl == b && rr == a)) out.push_back(e);
  }
  return out;
}

}  // namespace

Federation GenerateFederation(const FederationConfig& config, Rng& rng) {
  CISQP_CHECK(config.servers > 0 && config.relations > 0);
  CISQP_CHECK(config.min_attributes >= 1 &&
              config.min_attributes <= config.max_attributes);
  Federation fed;
  catalog::Catalog& cat = fed.catalog;

  for (std::size_t s = 0; s < config.servers; ++s) {
    CISQP_CHECK(cat.AddServer("S" + std::to_string(s)).ok());
  }

  for (std::size_t r = 0; r < config.relations; ++r) {
    const auto server =
        static_cast<catalog::ServerId>(rng.UniformIndex(config.servers));
    const std::size_t attrs = static_cast<std::size_t>(rng.UniformInt(
        static_cast<std::int64_t>(config.min_attributes),
        static_cast<std::int64_t>(config.max_attributes)));
    std::vector<catalog::AttributeSpec> specs;
    const std::string prefix = "R" + std::to_string(r) + "_A";
    for (std::size_t a = 0; a < attrs; ++a) {
      specs.push_back(catalog::AttributeSpec{prefix + std::to_string(a),
                                             catalog::ValueType::kInt64});
    }
    if (rng.Chance(0.3)) {
      specs.push_back(catalog::AttributeSpec{"R" + std::to_string(r) + "_label",
                                             catalog::ValueType::kString});
    }
    CISQP_CHECK(cat.AddRelation("R" + std::to_string(r), server, specs,
                                {specs.front().name})
                    .ok());
  }

  // Spanning tree over relations, then optional extra edges. Every edge
  // links two int64 attributes of different relations.
  const auto connect = [&](catalog::RelationId a, catalog::RelationId b) {
    const auto ia = IntAttributes(cat, a);
    const auto ib = IntAttributes(cat, b);
    const Status status = cat.AddJoinEdge(ia[rng.UniformIndex(ia.size())],
                                          ib[rng.UniformIndex(ib.size())]);
    CISQP_CHECK_MSG(status.ok() || status.code() == StatusCode::kAlreadyExists,
                    status.ToString());
  };
  for (catalog::RelationId r = 1; r < config.relations; ++r) {
    connect(r, static_cast<catalog::RelationId>(rng.UniformIndex(r)));
  }
  for (catalog::RelationId a = 0; a < config.relations; ++a) {
    for (catalog::RelationId b = a + 1; b < config.relations; ++b) {
      if (rng.Chance(config.extra_edge_prob)) connect(a, b);
    }
  }

  // Shared domains for join-connected attribute groups.
  UnionFind groups(cat.attribute_count());
  for (const catalog::JoinEdge& e : cat.join_edges()) {
    groups.Union(e.left, e.right);
  }
  std::vector<std::int64_t> group_domain(cat.attribute_count(), 0);
  fed.attribute_domain.resize(cat.attribute_count());
  for (catalog::AttributeId a = 0; a < cat.attribute_count(); ++a) {
    const std::size_t root = groups.Find(a);
    if (group_domain[root] == 0) {
      group_domain[root] = rng.UniformInt(config.min_domain, config.max_domain);
    }
    fed.attribute_domain[a] = group_domain[root];
  }
  return fed;
}

Result<plan::QuerySpec> GenerateQuery(const catalog::Catalog& cat,
                                      const QueryConfig& config, Rng& rng) {
  CISQP_CHECK(config.relations >= 1);
  if (config.relations > cat.relation_count()) {
    return InvalidArgumentError("query wants more relations than the schema has");
  }

  // Grow a random connected relation set along the join graph; retry with
  // fresh random starts when a branch dead-ends.
  constexpr int kMaxTries = 32;
  for (int attempt = 0; attempt < kMaxTries; ++attempt) {
    plan::QuerySpec spec;
    spec.first_relation =
        static_cast<catalog::RelationId>(rng.UniformIndex(cat.relation_count()));
    IdSet placed;
    placed.Insert(spec.first_relation);

    bool stuck = false;
    while (placed.size() < config.relations) {
      // Candidates: relations joinable to the placed set.
      std::vector<catalog::RelationId> frontier;
      for (catalog::RelationId r = 0; r < cat.relation_count(); ++r) {
        if (placed.Contains(r)) continue;
        for (IdSet::value_type p : placed) {
          if (!EdgesBetween(cat, r, p).empty()) {
            frontier.push_back(r);
            break;
          }
        }
      }
      if (frontier.empty()) {
        stuck = true;
        break;
      }
      const catalog::RelationId next = frontier[rng.UniformIndex(frontier.size())];
      std::vector<catalog::JoinEdge> incident;
      for (IdSet::value_type p : placed) {
        const auto edges = EdgesBetween(cat, next, p);
        incident.insert(incident.end(), edges.begin(), edges.end());
      }
      plan::JoinStep step;
      step.relation = next;
      rng.Shuffle(incident);
      const IdSet& next_attrs = cat.relation(next).attribute_set;
      for (std::size_t i = 0; i < incident.size(); ++i) {
        if (i > 0 && !rng.Chance(config.extra_atom_prob)) continue;
        const catalog::JoinEdge& e = incident[i];
        const bool right_is_next = next_attrs.Contains(e.right);
        step.atoms.push_back(right_is_next
                                 ? algebra::EquiJoinAtom{e.left, e.right}
                                 : algebra::EquiJoinAtom{e.right, e.left});
      }
      spec.joins.push_back(std::move(step));
      placed.Insert(next);
    }
    if (stuck) continue;

    // Select list: a random non-empty subset of the attributes in scope.
    std::vector<catalog::AttributeId> scope;
    for (catalog::RelationId r : spec.Relations()) {
      const auto& attrs = cat.relation(r).attributes;
      scope.insert(scope.end(), attrs.begin(), attrs.end());
    }
    rng.Shuffle(scope);
    const std::size_t width = 1 + rng.UniformIndex(std::min(config.max_select,
                                                            scope.size()));
    spec.select_list.assign(scope.begin(),
                            scope.begin() + static_cast<std::ptrdiff_t>(width));

    // Optional WHERE conjuncts on int64 attributes in scope.
    if (config.max_where > 0 && rng.Chance(config.where_prob)) {
      std::vector<catalog::AttributeId> int_scope;
      for (catalog::RelationId r : spec.Relations()) {
        const auto ints = IntAttributes(cat, r);
        int_scope.insert(int_scope.end(), ints.begin(), ints.end());
      }
      const std::size_t conjuncts = 1 + rng.UniformIndex(config.max_where);
      for (std::size_t i = 0; i < conjuncts && !int_scope.empty(); ++i) {
        spec.where.And(algebra::Comparison{
            int_scope[rng.UniformIndex(int_scope.size())],
            rng.Chance(0.5) ? algebra::CompareOp::kGe : algebra::CompareOp::kLt,
            storage::Value(rng.UniformInt(0, 100))});
      }
    }

    CISQP_RETURN_IF_ERROR(spec.Validate(cat));
    return spec;
  }
  return InvalidArgumentError(
      "could not grow a connected query of the requested size");
}

authz::AuthorizationSet GenerateAuthorizations(const catalog::Catalog& cat,
                                               const AuthzConfig& config,
                                               Rng& rng) {
  authz::AuthorizationSet auths;
  const auto add_ignoring_duplicates = [&](authz::Authorization auth) {
    const Status status = auths.Add(cat, std::move(auth));
    CISQP_CHECK_MSG(status.ok() || status.code() == StatusCode::kAlreadyExists,
                    status.ToString());
  };

  // Every server sees its own relations (paper §4 assumption).
  if (config.grant_own_relations) {
    for (catalog::RelationId r = 0; r < cat.relation_count(); ++r) {
      add_ignoring_duplicates(authz::Authorization{
          cat.relation(r).attribute_set, {}, cat.relation(r).server});
    }
  }

  const auto random_subset = [&](const IdSet& attrs) {
    IdSet subset;
    for (IdSet::value_type a : attrs) {
      if (rng.Chance(config.attribute_keep_prob)) subset.Insert(a);
    }
    if (subset.empty() && !attrs.empty()) {
      const std::size_t pick = rng.UniformIndex(attrs.size());
      subset.Insert(*(attrs.begin() + static_cast<std::ptrdiff_t>(pick)));
    }
    return subset;
  };

  for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
    // Foreign base-relation grants (empty join path).
    for (catalog::RelationId r = 0; r < cat.relation_count(); ++r) {
      if (cat.relation(r).server == s) continue;
      if (!rng.Chance(config.base_grant_prob)) continue;
      add_ignoring_duplicates(
          authz::Authorization{random_subset(cat.relation(r).attribute_set), {}, s});
    }

    // Join-path grants: random walks over the relation join graph.
    for (std::size_t g = 0; g < config.path_grants_per_server; ++g) {
      if (cat.join_edges().empty()) break;
      const std::size_t length = 1 + rng.UniformIndex(config.max_path_atoms);
      std::vector<authz::JoinAtom> atoms;
      IdSet covered_relations;
      const catalog::JoinEdge& seed =
          cat.join_edges()[rng.UniformIndex(cat.join_edges().size())];
      atoms.push_back(authz::JoinAtom::Make(seed.left, seed.right));
      covered_relations.Insert(cat.attribute(seed.left).relation);
      covered_relations.Insert(cat.attribute(seed.right).relation);
      while (atoms.size() < length) {
        std::vector<catalog::JoinEdge> extensions;
        for (const catalog::JoinEdge& e : cat.join_edges()) {
          const catalog::RelationId rl = cat.attribute(e.left).relation;
          const catalog::RelationId rr = cat.attribute(e.right).relation;
          const bool touches = covered_relations.Contains(rl) ||
                               covered_relations.Contains(rr);
          const bool inside = covered_relations.Contains(rl) &&
                              covered_relations.Contains(rr);
          if (touches && !inside) extensions.push_back(e);
        }
        if (extensions.empty()) break;
        const catalog::JoinEdge& e = extensions[rng.UniformIndex(extensions.size())];
        atoms.push_back(authz::JoinAtom::Make(e.left, e.right));
        covered_relations.Insert(cat.attribute(e.left).relation);
        covered_relations.Insert(cat.attribute(e.right).relation);
      }
      IdSet pool;
      for (IdSet::value_type r : covered_relations) {
        pool.UnionWith(cat.relation(r).attribute_set);
      }
      add_ignoring_duplicates(authz::Authorization{
          random_subset(pool), authz::JoinPath::FromAtoms(std::move(atoms)), s});
    }
  }
  return auths;
}

authz::OpenPolicySet GenerateDenials(const catalog::Catalog& cat,
                                     const DenialConfig& config, Rng& rng) {
  authz::OpenPolicySet denials;
  const auto add_ignoring_duplicates = [&](authz::Denial denial) {
    const Status status = denials.Add(cat, std::move(denial));
    CISQP_CHECK_MSG(status.ok() || status.code() == StatusCode::kAlreadyExists,
                    status.ToString());
  };
  const auto foreign_attribute = [&](catalog::ServerId s) -> catalog::AttributeId {
    for (int tries = 0; tries < 64; ++tries) {
      const auto a = static_cast<catalog::AttributeId>(
          rng.UniformIndex(cat.attribute_count()));
      if (cat.ServerOf(a) != s) return a;
    }
    return catalog::kInvalidId;
  };

  for (catalog::ServerId s = 0; s < cat.server_count(); ++s) {
    for (std::size_t d = 0; d < config.pair_denials_per_server; ++d) {
      const catalog::AttributeId a = foreign_attribute(s);
      const catalog::AttributeId b = foreign_attribute(s);
      if (a == catalog::kInvalidId || b == catalog::kInvalidId || a == b ||
          cat.attribute(a).relation == cat.attribute(b).relation) {
        continue;
      }
      authz::Denial denial;
      denial.attributes = IdSet{a, b};
      denial.server = s;
      if (rng.Chance(config.pathed_prob) && !cat.join_edges().empty()) {
        const catalog::JoinEdge& e =
            cat.join_edges()[rng.UniformIndex(cat.join_edges().size())];
        denial.path.Insert(authz::JoinAtom::Make(e.left, e.right));
      }
      add_ignoring_duplicates(std::move(denial));
    }
    for (std::size_t d = 0; d < config.attribute_denials_per_server; ++d) {
      const catalog::AttributeId a = foreign_attribute(s);
      if (a == catalog::kInvalidId) continue;
      authz::Denial denial;
      denial.attributes = IdSet{a};
      denial.server = s;
      add_ignoring_duplicates(std::move(denial));
    }
  }
  return denials;
}

Status PopulateCluster(exec::Cluster& cluster, const Federation& federation,
                       const DataConfig& config, Rng& rng) {
  const catalog::Catalog& cat = federation.catalog;
  for (catalog::RelationId r = 0; r < cat.relation_count(); ++r) {
    const std::size_t rows = static_cast<std::size_t>(
        rng.UniformInt(static_cast<std::int64_t>(config.min_rows),
                       static_cast<std::int64_t>(config.max_rows)));
    for (std::size_t i = 0; i < rows; ++i) {
      storage::Row row;
      for (catalog::AttributeId a : cat.relation(r).attributes) {
        const std::int64_t domain = federation.attribute_domain[a];
        if (cat.attribute(a).type == catalog::ValueType::kString) {
          row.emplace_back("v" + std::to_string(rng.UniformInt(0, std::max<std::int64_t>(domain, 2) - 1)));
        } else {
          row.emplace_back(rng.UniformInt(0, std::max<std::int64_t>(domain, 2) - 1));
        }
      }
      CISQP_RETURN_IF_ERROR(cluster.InsertRow(r, std::move(row)));
    }
  }
  return Status::Ok();
}

plan::StatsCatalog ComputeStats(const exec::Cluster& cluster) {
  plan::StatsCatalog stats;
  const catalog::Catalog& cat = cluster.catalog();
  for (catalog::RelationId rel = 0; rel < cat.relation_count(); ++rel) {
    stats.Set(rel, plan::StatsCatalog::FromTable(cluster.TableOf(rel)));
  }
  return stats;
}

}  // namespace cisqp::workload
