// Network accounting for the simulated federation.
//
// The paper's testbed is a set of cooperating database servers; this library
// simulates them in-process (DESIGN.md §2.7). What the experiments need from
// the network is its *accounting*: which server shipped how many rows and
// bytes to which other server on behalf of which plan node. NetworkStats
// records every transfer and aggregates per-link and global totals; each
// Record also feeds the process-wide obs metrics (exec.transfers,
// exec.rows_shipped, exec.bytes_shipped), making NetworkStats the metrics
// backend for all transfer counters.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"

namespace cisqp::exec {

/// One materialized shipment between two servers. Besides payload
/// accounting, every record carries the trace context that travelled with
/// the transfer on the (simulated) wire: the owning query's id and the span
/// under which the receiving server's work nests causally.
struct TransferRecord {
  int node_id = -1;
  catalog::ServerId from = catalog::kInvalidId;
  catalog::ServerId to = catalog::kInvalidId;
  std::size_t rows = 0;
  std::size_t bytes = 0;
  std::string description;
  std::int64_t query_id = -1;  ///< trace context: owning query, -1 unprofiled
  int parent_span = -1;        ///< trace context: sending hop's span index
};

/// Per-directed-link aggregate over all transfers on that link.
struct LinkStats {
  std::size_t messages = 0;
  std::size_t rows = 0;
  std::size_t bytes = 0;
};

/// Append-only transfer log with aggregation helpers.
class NetworkStats {
 public:
  void Record(TransferRecord record);

  const std::vector<TransferRecord>& transfers() const noexcept { return transfers_; }
  std::size_t total_messages() const noexcept { return transfers_.size(); }
  std::size_t total_bytes() const noexcept { return total_bytes_; }
  std::size_t total_rows() const noexcept { return total_rows_; }

  /// Message/row/byte aggregates per directed (from, to) link.
  const std::map<std::pair<catalog::ServerId, catalog::ServerId>, LinkStats>&
  links() const noexcept {
    return links_;
  }

  /// Multi-line human-readable report.
  std::string Summary(const catalog::Catalog& cat) const;

 private:
  std::vector<TransferRecord> transfers_;
  std::size_t total_bytes_ = 0;
  std::size_t total_rows_ = 0;
  std::map<std::pair<catalog::ServerId, catalog::ServerId>, LinkStats> links_;
};

}  // namespace cisqp::exec
