// FeasiblePlanSearch: feasibility-aware join ordering.
//
// The paper separates optimization into two steps (§5 end): pick a good
// query tree, then assign executors safely. A tree that is optimal for cost
// can still be *infeasible* — no safe assignment exists for that shape —
// while a different join order of the same query is perfectly executable
// (authorizations are path- and shape-sensitive). This module closes the
// loop the paper leaves open: it enumerates connected left-deep join orders
// of a QuerySpec, runs the paper's algorithm on each, and returns the
// cheapest feasible plan (estimated communication bytes under the shared
// cost model), reporting how many orders were tried and how many were
// feasible.
//
// Experiment E9 (bench_plan_search) measures the rescue rate: the fraction
// of queries whose FROM-order plan is infeasible but that this search still
// executes safely.
//
// The per-order work — build the reordered plan, run the paper's algorithm,
// cost the assignment — is embarrassingly independent, so `Search` fans the
// enumerated orders out across a ThreadPool (each task on its own builder
// and planner instances) and reduces to the min-cost feasible plan with a
// deterministic tie-break: among equal-cost plans the lowest order index
// wins, so parallel and sequential searches return byte-identical results
// (DESIGN.md §9).
#pragma once

#include <memory>

#include "planner/cost_planner.hpp"
#include "planner/safe_planner.hpp"
#include "plan/builder.hpp"
#include "plan/query_spec.hpp"

namespace cisqp::planner {

struct PlanSearchOptions {
  /// Cap on join orders examined (the order space is factorial).
  std::size_t max_orders = 2000;
  /// Parallelism for the per-order build/analyze/cost evaluations: 0 means
  /// hardware concurrency, 1 runs strictly on the calling thread. The
  /// chosen plan, its cost, and the reported counts are byte-identical at
  /// every setting (per-order evaluations are independent and the reduction
  /// tie-breaks on the lowest order index).
  std::size_t threads = 0;
  /// Options forwarded to the per-order SafePlanner runs.
  SafePlannerOptions planner_options;
  /// Options forwarded to the per-order PlanBuilder runs (join_order is
  /// ignored; the search dictates the order).
  plan::BuildOptions build_options;
};

struct PlanSearchResult {
  plan::QueryPlan plan;       ///< the chosen feasible plan
  SafePlan safe_plan;         ///< its safe assignment (paper heuristic)
  double estimated_bytes = 0; ///< heuristic assignment cost, shared model
  std::size_t orders_tried = 0;
  std::size_t orders_feasible = 0;
};

/// A cacheable, immutable handle to a finished search: the serving layer's
/// plan cache hands the same result to many concurrent requests, and the
/// executor only ever reads the plan/assignment, so shared const ownership
/// is safe (DESIGN.md §15.2).
using PlanHandle = std::shared_ptr<const PlanSearchResult>;

class FeasiblePlanSearch {
 public:
  FeasiblePlanSearch(const catalog::Catalog& cat, const authz::Policy& policy,
                     const plan::StatsCatalog* stats = nullptr,
                     const plan::StatsFeedback* feedback = nullptr)
      : cat_(cat), policy_(policy), stats_(stats), feedback_(feedback) {}

  /// Finds the cheapest feasible left-deep ordering of `spec`, or
  /// kInfeasible when no examined order admits a safe assignment.
  Result<PlanSearchResult> Search(const plan::QuerySpec& spec,
                                  const PlanSearchOptions& options = {}) const;

  /// Enumerates connected left-deep orders of `spec` (capped), as reordered
  /// QuerySpecs. Exposed for tests and experiments.
  Result<std::vector<plan::QuerySpec>> EnumerateOrders(
      const plan::QuerySpec& spec, std::size_t max_orders) const;

 private:
  const catalog::Catalog& cat_;
  const authz::Policy& policy_;
  const plan::StatsCatalog* stats_;
  const plan::StatsFeedback* feedback_;  // may be null: model estimates only
};

}  // namespace cisqp::planner
