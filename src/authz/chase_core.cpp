#include "authz/chase_core.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::authz::chase_internal {

Status ExceededCap(const ChaseOptions& options) {
  return ResourceExhaustedError("chase closure exceeded max_derived_rules=" +
                                std::to_string(options.max_derived_rules));
}

Status RunSemiNaive(const catalog::Catalog& cat, const EdgeIndex& index,
                    RulePool& pool, std::size_t delta_begin,
                    catalog::ServerId server, const ChaseOptions& options,
                    ChaseStats& stats) {
  std::vector<std::pair<IdSet, JoinPath>> pending;
  while (delta_begin < pool.size()) {
    ++stats.iterations;
    CISQP_METRIC_INC("chase.iterations");
    CISQP_TRACE_SPAN(round_span, "authz.chase.iteration");
    round_span.AddAttribute("server", cat.server(server).name);
    const std::size_t round_start_rules = stats.derived_rules;
    const std::size_t frozen = pool.size();
    pending.clear();
    for (std::size_t j = delta_begin; j < frozen; ++j) {
      const RulePool::Rule& rule_j = pool.rule(j);
      for (std::size_t i = 0; i < j; ++i) {
        const RulePool::Rule& rule_i = pool.rule(i);
        EdgeBits::ForEachJoinable(
            rule_i.left, rule_i.right, rule_j.left, rule_j.right,
            [&](std::size_t e) {
              ++stats.pairs_considered;
              // One endpoint is visible through rule i, the other through
              // rule j: the server can join the two authorized views locally
              // on attributes it already sees. The derived rule is symmetric
              // in (i, j), so the unordered pair is derived once.
              const catalog::JoinEdge& edge = index.edge(e);
              JoinPath derived_path = JoinPath::Union(rule_i.path, rule_j.path);
              derived_path.Insert(JoinAtom::Make(edge.left, edge.right));
              if (options.max_path_atoms != 0 &&
                  derived_path.size() > options.max_path_atoms) {
                return;
              }
              pending.emplace_back(IdSet::Union(rule_i.attrs, rule_j.attrs),
                                   std::move(derived_path));
            });
      }
    }
    for (auto& [attrs, path] : pending) {
      if (!pool.AddIfNovel(std::move(attrs), std::move(path))) continue;
      if (++stats.derived_rules > options.max_derived_rules) {
        return ExceededCap(options);
      }
    }
    round_span.AddAttribute("rules_fired",
                            stats.derived_rules - round_start_rules);
    delta_begin = frozen;
  }
  return Status::Ok();
}

}  // namespace cisqp::authz::chase_internal
