// E8 — chase closure (§3.2): derived-rule counts and fixpoint work as the
// explicit policy and the schema grow; plus E10, the planning impact of the
// closure — how many queries become feasible only once implied rules are
// materialized.
#include "bench_util.hpp"

#include "authz/chase.hpp"
#include "workload/generator.hpp"

namespace cisqp::bench {
namespace {

void PrintChaseTable() {
  PrintHeader("E8 / §3.2 chase closure",
              "closure growth: input rules -> derived rules, fixpoint rounds "
              "and combination work, as grants per server increase");
  Artifact artifact("chase", "E8 / §3.2 chase closure",
                    "closure growth vs grants per server");
  std::printf("%-14s %-12s %-12s %-12s %-14s\n", "grants/server", "input",
              "closed", "rounds", "pairs_tried");
  for (const std::size_t grants : {0u, 1u, 2u, 4u, 8u}) {
    Rng rng(8800 + grants);
    workload::FederationConfig fed_config;
    fed_config.servers = 4;
    fed_config.relations = 6;
    const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
    workload::AuthzConfig authz_config;
    authz_config.base_grant_prob = 0.2 * static_cast<double>(grants);
    authz_config.path_grants_per_server = grants;
    authz_config.max_path_atoms = 2;
    const authz::AuthorizationSet auths =
        workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
    authz::ChaseOptions options;
    options.max_path_atoms = 4;
    options.max_derived_rules = 200000;
    options.threads = BenchThreads();
    authz::ChaseStats stats;
    const auto closed =
        Unwrap(authz::ChaseClosure(fed.catalog, auths, options, &stats), "chase");
    std::printf("%-14zu %-12zu %-12zu %-12zu %-14zu\n", grants, auths.size(),
                closed.size(), stats.iterations, stats.pairs_considered);
    artifact.Row()
        .Value("grants_per_server", grants)
        .Value("input_rules", auths.size())
        .Value("closed_rules", closed.size())
        .Value("rounds", stats.iterations)
        .Value("pairs_tried", stats.pairs_considered)
        .Value("threads", ResolveThreads(options.threads));
  }
  artifact.Write();

  // The paper's own scenario.
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet med =
      workload::MedicalScenario::BuildAuthorizations(cat);
  authz::ChaseStats stats;
  const auto closed = Unwrap(authz::ChaseClosure(cat, med, {}, &stats), "chase");
  std::printf("\nmedical scenario (Fig. 3): %zu explicit -> %zu closed rules, "
              "%zu rounds\n\n",
              med.size(), closed.size(), stats.iterations);
}

void PrintChaseFeasibilityTable() {
  PrintHeader("E10 / §3.2 chase × planning",
              "queries feasible under the raw policy vs under its chase "
              "closure: the implied rules a planner must not ignore");
  std::printf("%-10s %-9s %-14s %-16s %-10s\n", "density", "queries",
              "raw_feasible", "closed_feasible", "unlocked");
  for (const double density : {0.2, 0.4, 0.6}) {
    int queries = 0;
    int raw_feasible = 0;
    int closed_feasible = 0;
    Rng rng(static_cast<std::uint64_t>(5100 + density * 100));
    for (int fed_idx = 0; fed_idx < 8; ++fed_idx) {
      workload::FederationConfig fed_config;
      fed_config.servers = 4;
      fed_config.relations = 5;
      const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
      workload::AuthzConfig authz_config;
      authz_config.base_grant_prob = density;
      authz_config.path_grants_per_server = 2;
      const authz::AuthorizationSet auths =
          workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
      authz::ChaseOptions chase_options;
      chase_options.max_path_atoms = 4;
      const auto closed = authz::ChaseClosure(fed.catalog, auths, chase_options);
      if (!closed.ok()) continue;
      planner::SafePlanner raw(fed.catalog, auths);
      planner::SafePlanner chased(fed.catalog, *closed);
      for (int q = 0; q < 8; ++q) {
        workload::QueryConfig query_config;
        query_config.relations = 3;
        auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
        if (!spec.ok()) continue;
        auto built = plan::PlanBuilder(fed.catalog).Build(*spec);
        if (!built.ok()) continue;
        ++queries;
        if (Unwrap(raw.Analyze(*built), "raw").feasible) ++raw_feasible;
        if (Unwrap(chased.Analyze(*built), "chased").feasible) ++closed_feasible;
      }
    }
    std::printf("%-10.2f %-9d %-14d %-16d %d\n", density, queries, raw_feasible,
                closed_feasible, closed_feasible - raw_feasible);
  }
  std::printf("\n");
}

void BM_ChaseMedical(benchmark::State& state) {
  const catalog::Catalog cat = workload::MedicalScenario::BuildCatalog();
  const authz::AuthorizationSet auths =
      workload::MedicalScenario::BuildAuthorizations(cat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(authz::ChaseClosure(cat, auths));
  }
}
BENCHMARK(BM_ChaseMedical);

void BM_ChaseSynthetic(benchmark::State& state) {
  Rng rng(99);
  workload::FederationConfig fed_config;
  fed_config.servers = 4;
  fed_config.relations = static_cast<std::size_t>(state.range(0));
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = 0.5;
  authz_config.path_grants_per_server = 3;
  authz_config.max_path_atoms = 2;
  const authz::AuthorizationSet auths =
      workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
  authz::ChaseOptions options;
  options.max_path_atoms = 3;
  options.max_derived_rules = 500000;
  std::size_t closed_size = 0;
  for (auto _ : state) {
    auto closed = authz::ChaseClosure(fed.catalog, auths, options);
    if (closed.ok()) closed_size = closed->size();
    benchmark::DoNotOptimize(closed);
  }
  state.counters["input_rules"] = static_cast<double>(auths.size());
  state.counters["closed_rules"] = static_cast<double>(closed_size);
}
BENCHMARK(BM_ChaseSynthetic)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintChaseTable();
  cisqp::bench::PrintChaseFeasibilityTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
