// Unit tests for src/storage: Value semantics and Table behavior.
#include <gtest/gtest.h>

#include "storage/table.hpp"
#include "test_util.hpp"

namespace cisqp::storage {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(std::int64_t{1}).is_int64());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_EQ(Value(std::int64_t{1}).type(), catalog::ValueType::kInt64);
  EXPECT_EQ(Value(1.5).type(), catalog::ValueType::kDouble);
  EXPECT_EQ(Value("x").type(), catalog::ValueType::kString);
  EXPECT_THROW(Value().type(), BadStatus);
}

TEST(ValueTest, SqlEqualityNeverMatchesNull) {
  EXPECT_FALSE(Value().SqlEquals(Value()));
  EXPECT_FALSE(Value().SqlEquals(Value(std::int64_t{1})));
  EXPECT_TRUE(Value(std::int64_t{1}).SqlEquals(Value(std::int64_t{1})));
  EXPECT_FALSE(Value(std::int64_t{1}).SqlEquals(Value(std::int64_t{2})));
  EXPECT_TRUE(Value("a").SqlEquals(Value("a")));
  // Cross-type equality is false, not an error.
  EXPECT_FALSE(Value(std::int64_t{1}).SqlEquals(Value(1.0)));
}

TEST(ValueTest, SqlLess) {
  EXPECT_TRUE(Value(std::int64_t{1}).SqlLess(Value(std::int64_t{2})));
  EXPECT_FALSE(Value(std::int64_t{2}).SqlLess(Value(std::int64_t{2})));
  EXPECT_TRUE(Value("abc").SqlLess(Value("abd")));
  EXPECT_FALSE(Value().SqlLess(Value(std::int64_t{1})));
  EXPECT_FALSE(Value(std::int64_t{1}).SqlLess(Value()));
}

TEST(ValueTest, TotalOrderPutsNullFirst) {
  EXPECT_LT(Value().CompareTotal(Value(std::int64_t{0})), 0);
  EXPECT_EQ(Value().CompareTotal(Value()), 0);
  EXPECT_GT(Value("z").CompareTotal(Value(std::int64_t{5})), 0);  // string tag > int tag
  EXPECT_LT(Value(std::int64_t{1}).CompareTotal(Value(std::int64_t{2})), 0);
}

TEST(ValueTest, WireSize) {
  EXPECT_EQ(Value().WireSizeBytes(), 1u);
  EXPECT_EQ(Value(std::int64_t{7}).WireSizeBytes(), 8u);
  EXPECT_EQ(Value(1.0).WireSizeBytes(), 8u);
  EXPECT_EQ(Value("abcd").WireSizeBytes(), 8u);  // 4 + 4
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(std::int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(ValueTest, HashDistinguishesTypesAndValues) {
  EXPECT_NE(Value(std::int64_t{1}).Hash(), Value(std::int64_t{2}).Hash());
  EXPECT_NE(Value(std::int64_t{1}).Hash(), Value("1").Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
}

class TableTest : public ::testing::Test {
 protected:
  catalog::Catalog cat_ = workload::MedicalScenario::BuildCatalog();
};

TEST_F(TableTest, ForRelationMatchesSchema) {
  const Table t = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Hospital"));
  ASSERT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.columns()[0].attribute, cisqp::testing::Attr(cat_, "Patient"));
  EXPECT_EQ(t.columns()[1].type, catalog::ValueType::kString);
  EXPECT_TRUE(t.empty());
}

TEST_F(TableTest, AppendRowValidatesArityAndTypes) {
  Table t = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Insurance"));
  ASSERT_OK(t.AppendRow({Value(std::int64_t{1}), Value("gold")}));
  EXPECT_EQ(t.AppendRow({Value(std::int64_t{1})}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.AppendRow({Value("oops"), Value("gold")}).code(),
            StatusCode::kInvalidArgument);
  // NULL fits any column.
  ASSERT_OK(t.AppendRow({Value(), Value()}));
  EXPECT_EQ(t.row_count(), 2u);
}

TEST_F(TableTest, ColumnIndexAndAttributeSet) {
  const Table t = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Hospital"));
  EXPECT_EQ(t.ColumnIndex(cisqp::testing::Attr(cat_, "Disease")), 1u);
  EXPECT_FALSE(t.ColumnIndex(cisqp::testing::Attr(cat_, "Plan")).has_value());
  EXPECT_EQ(t.AttributeSet(),
            cisqp::testing::Attrs(cat_, {"Patient", "Disease", "Physician"}));
}

TEST_F(TableTest, WireSizeSumsCells) {
  Table t = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Insurance"));
  ASSERT_OK(t.AppendRow({Value(std::int64_t{1}), Value("gold")}));  // 8 + (4+4)
  EXPECT_EQ(t.WireSizeBytes(), 16u);
}

TEST_F(TableTest, MultisetEqualityIgnoresRowOrder) {
  Table a = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Insurance"));
  Table b = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Insurance"));
  ASSERT_OK(a.AppendRow({Value(std::int64_t{1}), Value("x")}));
  ASSERT_OK(a.AppendRow({Value(std::int64_t{2}), Value("y")}));
  ASSERT_OK(b.AppendRow({Value(std::int64_t{2}), Value("y")}));
  ASSERT_OK(b.AppendRow({Value(std::int64_t{1}), Value("x")}));
  EXPECT_TRUE(Table::SameRowMultiset(a, b));
  ASSERT_OK(b.AppendRow({Value(std::int64_t{1}), Value("x")}));
  EXPECT_FALSE(Table::SameRowMultiset(a, b));
}

TEST_F(TableTest, MultisetEqualityRespectsMultiplicity) {
  Table a = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Insurance"));
  Table b = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Insurance"));
  ASSERT_OK(a.AppendRow({Value(std::int64_t{1}), Value("x")}));
  ASSERT_OK(a.AppendRow({Value(std::int64_t{1}), Value("x")}));
  ASSERT_OK(b.AppendRow({Value(std::int64_t{1}), Value("x")}));
  ASSERT_OK(b.AppendRow({Value(std::int64_t{2}), Value("x")}));
  EXPECT_FALSE(Table::SameRowMultiset(a, b));
}

TEST_F(TableTest, DifferentHeadersNeverEqual) {
  const Table a = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Insurance"));
  const Table b = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Hospital"));
  EXPECT_FALSE(Table::SameRowMultiset(a, b));
}

TEST_F(TableTest, DisplayStringTruncates) {
  Table t = Table::ForRelation(cat_, cisqp::testing::Relation(cat_, "Insurance"));
  for (std::int64_t i = 0; i < 30; ++i) {
    ASSERT_OK(t.AppendRow({Value(i), Value("p")}));
  }
  const std::string shown = t.ToDisplayString(cat_, 5);
  EXPECT_NE(shown.find("Holder"), std::string::npos);
  EXPECT_NE(shown.find("(25 more rows)"), std::string::npos);
  EXPECT_NE(shown.find("30 row(s)"), std::string::npos);
}

}  // namespace
}  // namespace cisqp::storage
