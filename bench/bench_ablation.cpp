// E7 — ablation of the paper's two planning principles (§5: favor
// semi-joins; prefer high-join-count masters): estimated bytes shipped by
// the paper heuristic vs the communication-optimal safe assignment
// (MinCostSafePlanner) vs the cheapest plan with semi-joins disabled, over
// random feasible workloads.
#include "bench_util.hpp"

#include "planner/cost_planner.hpp"
#include "planner/verifier.hpp"
#include "workload/generator.hpp"

namespace cisqp::bench {
namespace {

struct AblationRow {
  int instances = 0;
  double heuristic_bytes = 0.0;
  double optimal_bytes = 0.0;
  int heuristic_optimal = 0;  ///< instances where the heuristic hit the optimum
};

void PrintAblation() {
  PrintHeader("E7 / §5 planning principles (ablation)",
              "estimated bytes shipped: paper heuristic vs min-cost safe "
              "assignment, over random feasible instances");
  Artifact artifact("ablation", "E7 / §5 planning principles (ablation)",
                    "estimated bytes: paper heuristic vs min-cost assignment");
  std::printf("%-10s %-10s %-16s %-16s %-12s %-14s\n", "q.rels", "instances",
              "heuristic_B", "optimal_B", "overhead", "hit_optimum");
  for (const std::size_t query_relations : {2u, 3u, 4u, 5u}) {
    AblationRow row;
    Rng rng(9100 + query_relations);
    for (int fed_idx = 0; fed_idx < 8; ++fed_idx) {
      workload::FederationConfig fed_config;
      fed_config.servers = 5;
      fed_config.relations = 7;
      const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
      workload::AuthzConfig authz_config;
      authz_config.base_grant_prob = 0.7;
      authz_config.path_grants_per_server = 6;
      const authz::AuthorizationSet auths =
          workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
      exec::Cluster cluster(fed.catalog);
      UnwrapStatus(workload::PopulateCluster(cluster, fed, {}, rng), "populate");
      const plan::StatsCatalog stats = workload::ComputeStats(cluster);

      for (int q = 0; q < 6; ++q) {
        workload::QueryConfig query_config;
        query_config.relations = query_relations;
        auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
        if (!spec.ok()) continue;
        auto built = plan::PlanBuilder(fed.catalog, &stats).Build(*spec);
        if (!built.ok()) continue;

        planner::SafePlanner heuristic(fed.catalog, auths);
        const auto report = Unwrap(heuristic.Analyze(*built), "analyze");
        if (!report.feasible) continue;

        planner::MinCostSafePlanner mincost(fed.catalog, auths, &stats);
        const auto costed = Unwrap(mincost.Plan(*built), "mincost");
        const double heuristic_bytes = Unwrap(
            mincost.EstimateAssignmentBytes(*built, report.plan->assignment),
            "estimate");
        ++row.instances;
        row.heuristic_bytes += heuristic_bytes;
        row.optimal_bytes += costed.total_bytes;
        if (heuristic_bytes <= costed.total_bytes * 1.001) ++row.heuristic_optimal;
      }
    }
    std::printf("%-10zu %-10d %-16.0f %-16.0f %-12.3f %d/%d\n", query_relations,
                row.instances, row.heuristic_bytes, row.optimal_bytes,
                row.optimal_bytes > 0.0 ? row.heuristic_bytes / row.optimal_bytes
                                        : 1.0,
                row.heuristic_optimal, row.instances);
    artifact.Row()
        .Value("query_relations", query_relations)
        .Value("instances", row.instances)
        .Value("heuristic_bytes", row.heuristic_bytes)
        .Value("optimal_bytes", row.optimal_bytes)
        .Value("heuristic_optimal", row.heuristic_optimal);
  }
  artifact.Write();
  std::printf("\n(overhead = heuristic bytes / optimal bytes; 1.0 = the paper\n"
              "heuristic matches the communication optimum)\n\n");
}

void BM_MinCostPlanner(benchmark::State& state) {
  Rng rng(404);
  workload::FederationConfig fed_config;
  fed_config.servers = 5;
  fed_config.relations = 8;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = 0.8;
  authz_config.path_grants_per_server = 6;
  const authz::AuthorizationSet auths =
      workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
  workload::QueryConfig query_config;
  query_config.relations = static_cast<std::size_t>(state.range(0));
  const auto spec =
      Unwrap(workload::GenerateQuery(fed.catalog, query_config, rng), "query");
  const auto plan = Unwrap(plan::PlanBuilder(fed.catalog).Build(spec), "plan");
  planner::MinCostSafePlanner mincost(fed.catalog, auths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mincost.Plan(plan));
  }
}
BENCHMARK(BM_MinCostPlanner)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
