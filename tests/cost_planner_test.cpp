// Tests for the cost model and the min-cost safe planner (E7 machinery).
#include <gtest/gtest.h>

#include "planner/cost_planner.hpp"
#include "planner/exhaustive.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace cisqp::planner {
namespace {

using cisqp::testing::Attr;
using cisqp::testing::MedicalFixture;
using cisqp::testing::Relation;
using cisqp::testing::Server;

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plan::RelationStats ins{1000.0, {}};
    ins.distinct[Attr(fix_.cat, "Holder")] = 1000.0;
    stats_.Set(Relation(fix_.cat, "Insurance"), ins);
    plan::RelationStats reg{2000.0, {}};
    reg.distinct[Attr(fix_.cat, "Citizen")] = 2000.0;
    stats_.Set(Relation(fix_.cat, "Nat_registry"), reg);
  }

  MedicalFixture fix_;
  plan::StatsCatalog stats_;
};

TEST_F(CostModelTest, RowWidthByType) {
  const CostModel model(fix_.cat, &stats_);
  // Holder: int64 (8); Plan: string (16).
  EXPECT_DOUBLE_EQ(
      model.RowWidthBytes({Attr(fix_.cat, "Holder"), Attr(fix_.cat, "Plan")}),
      24.0);
}

TEST_F(CostModelTest, ResultBytesAndDistinct) {
  const CostModel model(fix_.cat, &stats_);
  const auto leaf = plan::PlanNode::Relation(Relation(fix_.cat, "Insurance"));
  plan::QueryPlan plan(leaf->Clone());
  EXPECT_DOUBLE_EQ(model.EstimateRows(*plan.root()), 1000.0);
  EXPECT_DOUBLE_EQ(model.EstimateResultBytes(*plan.root()), 1000.0 * 24.0);
  // Distinct of the key is capped at the row count.
  IdSet holder;
  holder.Insert(Attr(fix_.cat, "Holder"));
  EXPECT_DOUBLE_EQ(model.EstimateDistinct(*plan.root(), holder), 1000.0);
}

TEST_F(CostModelTest, SemiJoinCheaperOnSelectiveJoins) {
  // Join result is small (key-key join): the semi-join flow ships far fewer
  // bytes than the full Nat_registry relation.
  auto join = plan::PlanNode::Join(
      plan::PlanNode::Relation(Relation(fix_.cat, "Insurance")),
      plan::PlanNode::Relation(Relation(fix_.cat, "Nat_registry")),
      {algebra::EquiJoinAtom{Attr(fix_.cat, "Holder"), Attr(fix_.cat, "Citizen")}});
  plan::QueryPlan plan(std::move(join));
  const CostModel model(fix_.cat, &stats_);
  const plan::PlanNode* root = plan.root();
  IdSet jl;
  jl.Insert(Attr(fix_.cat, "Holder"));
  const double semi = model.SemiJoinBytes(*root, *root->left, *root->right, jl);
  const double regular = model.RegularJoinBytes(*root->right, false);
  EXPECT_LT(semi, regular);
  EXPECT_DOUBLE_EQ(model.RegularJoinBytes(*root->right, true), 0.0);
}

class MinCostPlannerTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;
};

TEST_F(MinCostPlannerTest, AgreesWithHeuristicOnPaperExample) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  MinCostSafePlanner mincost(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(CostedPlan costed, mincost.Plan(plan));
  EXPECT_OK(VerifyAssignment(fix_.cat, fix_.auths, plan, costed.assignment));
  EXPECT_GT(costed.total_bytes, 0.0);

  SafePlanner heuristic(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(SafePlan sp, heuristic.Plan(plan));
  ASSERT_OK_AND_ASSIGN(double heuristic_bytes,
                       mincost.EstimateAssignmentBytes(plan, sp.assignment));
  EXPECT_LE(costed.total_bytes, heuristic_bytes);
  // With a single feasible assignment (Fig. 7) both planners must agree.
  EXPECT_EQ(costed.assignment.Of(1).master, Server(fix_.cat, "S_H"));
  EXPECT_EQ(costed.assignment.Of(2).master, Server(fix_.cat, "S_N"));
}

TEST_F(MinCostPlannerTest, InfeasibleWhenNoSafeAssignment) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  authz::AuthorizationSet empty;
  MinCostSafePlanner mincost(fix_.cat, empty);
  EXPECT_EQ(mincost.Plan(plan).status().code(), StatusCode::kInfeasible);
}

TEST_F(MinCostPlannerTest, PrefersColocatedRegularJoin) {
  // Both relations at one server with full mutual grants: cheapest safe plan
  // is the zero-byte colocated regular join.
  catalog::Catalog cat;
  const auto s0 = cat.AddServer("s0").value();
  ASSERT_OK(cat.AddServer("s1").status());
  ASSERT_OK(cat.AddRelation("L", s0, {{"LK", catalog::ValueType::kInt64}}, {"LK"}).status());
  ASSERT_OK(cat.AddRelation("R", s0, {{"RK", catalog::ValueType::kInt64}}, {"RK"}).status());
  ASSERT_OK(cat.AddJoinEdge("LK", "RK"));
  authz::AuthorizationSet auths;
  ASSERT_OK(auths.Add(cat, "s0", {"LK"}, {}));
  ASSERT_OK(auths.Add(cat, "s0", {"RK"}, {}));

  auto join = plan::PlanNode::Join(
      plan::PlanNode::Relation(cat.FindRelation("L").value()),
      plan::PlanNode::Relation(cat.FindRelation("R").value()),
      {algebra::EquiJoinAtom{cat.FindAttribute("LK").value(),
                             cat.FindAttribute("RK").value()}});
  plan::QueryPlan plan(std::move(join));
  MinCostSafePlanner mincost(cat, auths);
  ASSERT_OK_AND_ASSIGN(CostedPlan costed, mincost.Plan(plan));
  EXPECT_DOUBLE_EQ(costed.total_bytes, 0.0);
  EXPECT_EQ(costed.assignment.Of(0).mode, ExecutionMode::kRegularJoin);
  EXPECT_EQ(costed.assignment.Of(0).master, s0);
}

TEST_F(MinCostPlannerTest, DpMatchesBruteForceMinimum) {
  // Over random feasible instances: the DP's optimum must equal the true
  // minimum of the same cost model over ALL safe assignments (enumerated by
  // the exhaustive baseline and scored by EstimateAssignmentBytes).
  Rng rng(8181);
  int checked = 0;
  for (int round = 0; round < 12; ++round) {
    workload::FederationConfig fed_config;
    fed_config.servers = 4;
    fed_config.relations = 6;
    const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
    workload::AuthzConfig authz_config;
    authz_config.base_grant_prob = 0.7;
    authz_config.path_grants_per_server = 5;
    const authz::AuthorizationSet auths =
        workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
    exec::Cluster cluster(fed.catalog);
    ASSERT_OK(workload::PopulateCluster(cluster, fed, {}, rng));
    const plan::StatsCatalog stats = workload::ComputeStats(cluster);

    workload::QueryConfig query_config;
    query_config.relations = 3;
    auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
    if (!spec.ok()) continue;
    auto built = plan::PlanBuilder(fed.catalog, &stats).Build(*spec);
    if (!built.ok()) continue;

    ASSERT_OK_AND_ASSIGN(ExhaustiveResult exhaustive,
                         EnumerateSafeAssignments(fed.catalog, auths, *built));
    if (!exhaustive.feasible()) continue;
    MinCostSafePlanner mincost(fed.catalog, auths, &stats);
    ASSERT_OK_AND_ASSIGN(CostedPlan dp, mincost.Plan(*built));

    double brute = std::numeric_limits<double>::infinity();
    for (const Assignment& assignment : exhaustive.safe_assignments) {
      ASSERT_OK_AND_ASSIGN(double bytes,
                           mincost.EstimateAssignmentBytes(*built, assignment));
      brute = std::min(brute, bytes);
    }
    EXPECT_NEAR(dp.total_bytes, brute, 1e-6 * std::max(1.0, brute))
        << spec->ToString(fed.catalog);
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

TEST_F(MinCostPlannerTest, EstimateAssignmentBytesRejectsBadModes) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  MinCostSafePlanner mincost(fix_.cat, fix_.auths);
  Assignment bad(plan.node_count());  // all local, including joins
  EXPECT_EQ(mincost.EstimateAssignmentBytes(plan, bad).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cisqp::planner
