// Metrics: a process-wide registry of named counters, gauges and histograms.
//
// Names are dotted strings ("exec.bytes_shipped", "chase.iterations");
// instrumented code records blindly and the registry materializes series on
// demand as text or JSON snapshots. Like the tracer, the registry is
// disabled by default and every recording call is a single bool check when
// disabled (and folds away entirely under -DCISQP_OBS_DISABLED).
//
// Histograms keep count/sum/min/max plus power-of-two buckets — enough to
// read tail behaviour of transfer sizes and planning latencies without a
// full quantile sketch.
//
// Recording is thread-safe (DESIGN.md §9): the enabled flag is atomic (the
// disabled fast path stays one relaxed load) and the slow paths serialize on
// one mutex — contention is acceptable because every hot loop batches its
// counts locally and records aggregates. The snapshot readers are meant for
// quiescent code (shells, test assertions, artifact writers).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace cisqp::obs {

/// Aggregated observations of one histogram series.
struct HistogramData {
  static constexpr std::size_t kBuckets = 64;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// bucket[i] counts observations v with 2^(i-1) <= v < 2^i (bucket[0]:
  /// v < 1). Negative observations clamp into bucket 0.
  std::uint64_t buckets[kBuckets] = {};

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Quantile `q` in [0, 1], linearly interpolated inside the power-of-two
  /// bucket holding the q-th observation and clamped to [min, max]. Exact at
  /// the extremes (q=0 → min, q=1 → max); in between the error is bounded by
  /// the bucket width. Returns 0 on an empty histogram.
  double Percentile(double q) const;
};

/// Process-wide metrics store. `Get()` returns the singleton; recording is a
/// no-op until `Enable()`.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  void Enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void Reset();

  /// Adds `delta` to counter `name` (created at zero on first use).
  void Add(std::string_view name, std::uint64_t delta = 1) {
    if constexpr (kObsCompiledIn) {
      if (enabled()) AddSlow(name, delta);
    }
  }

  /// Sets gauge `name` to `value`.
  void Set(std::string_view name, double value) {
    if constexpr (kObsCompiledIn) {
      if (enabled()) SetSlow(name, value);
    }
  }

  /// Records one observation into histogram `name`.
  void Observe(std::string_view name, double value) {
    if constexpr (kObsCompiledIn) {
      if (enabled()) ObserveSlow(name, value);
    }
  }

  /// Current counter value; 0 when the counter was never touched.
  std::uint64_t Counter(std::string_view name) const;
  /// Current gauge value; 0.0 when never set.
  double Gauge(std::string_view name) const;
  /// Histogram aggregate; zeroed data when never observed.
  HistogramData Histogram(std::string_view name) const;

  // Whole-store views for exporters; read only from quiescent code.
  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, HistogramData, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Multi-line "name value" snapshot, sections per kind, sorted by name.
  std::string ToText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

 private:
  void AddSlow(std::string_view name, std::uint64_t delta);
  void SetSlow(std::string_view name, double value);
  void ObserveSlow(std::string_view name, double value);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards the three stores
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramData, std::less<>> histograms_;
};

/// Instrumentation shorthands, uniform with CISQP_TRACE_SPAN.
#define CISQP_METRIC_ADD(name, delta) \
  ::cisqp::obs::MetricsRegistry::Get().Add((name), (delta))
#define CISQP_METRIC_INC(name) ::cisqp::obs::MetricsRegistry::Get().Add((name), 1)
#define CISQP_METRIC_SET(name, value) \
  ::cisqp::obs::MetricsRegistry::Get().Set((name), (value))
#define CISQP_METRIC_OBSERVE(name, value) \
  ::cisqp::obs::MetricsRegistry::Get().Observe((name), (value))

}  // namespace cisqp::obs
