#include "workload/medical.hpp"

#include <string>
#include <vector>

namespace cisqp::workload {

catalog::Catalog MedicalScenario::BuildCatalog() {
  using catalog::AttributeSpec;
  using catalog::ValueType;
  catalog::Catalog cat;
  const catalog::ServerId si = cat.AddServer("S_I").value();
  const catalog::ServerId sh = cat.AddServer("S_H").value();
  const catalog::ServerId sn = cat.AddServer("S_N").value();
  const catalog::ServerId sd = cat.AddServer("S_D").value();

  CISQP_CHECK(cat.AddRelation("Insurance", si,
                              {AttributeSpec{"Holder", ValueType::kInt64},
                               AttributeSpec{"Plan", ValueType::kString}},
                              {"Holder"})
                  .ok());
  CISQP_CHECK(cat.AddRelation("Hospital", sh,
                              {AttributeSpec{"Patient", ValueType::kInt64},
                               AttributeSpec{"Disease", ValueType::kString},
                               AttributeSpec{"Physician", ValueType::kString}},
                              {"Patient"})
                  .ok());
  CISQP_CHECK(cat.AddRelation("Nat_registry", sn,
                              {AttributeSpec{"Citizen", ValueType::kInt64},
                               AttributeSpec{"HealthAid", ValueType::kString}},
                              {"Citizen"})
                  .ok());
  CISQP_CHECK(cat.AddRelation("Disease_list", sd,
                              {AttributeSpec{"Illness", ValueType::kString},
                               AttributeSpec{"Treatment", ValueType::kString}},
                              {"Illness"})
                  .ok());

  CISQP_CHECK(cat.AddJoinEdge("Holder", "Patient").ok());
  CISQP_CHECK(cat.AddJoinEdge("Holder", "Citizen").ok());
  CISQP_CHECK(cat.AddJoinEdge("Patient", "Citizen").ok());
  CISQP_CHECK(cat.AddJoinEdge("Disease", "Illness").ok());
  return cat;
}

authz::AuthorizationSet MedicalScenario::BuildAuthorizations(
    const catalog::Catalog& cat) {
  authz::AuthorizationSet auths;
  using Path = std::vector<std::pair<std::string, std::string>>;
  const auto add = [&](std::string_view server,
                       const std::vector<std::string>& attrs, const Path& path) {
    CISQP_CHECK_MSG(auths.Add(cat, server, attrs, path).ok(),
                    "Fig. 3 authorization failed to install");
  };

  // Fig. 3, rules 1-15 in order.
  add("S_I", {"Holder", "Plan"}, {});
  add("S_I", {"Holder", "Plan", "Patient", "Physician"}, {{"Holder", "Patient"}});
  add("S_I", {"Holder", "Plan", "Treatment"},
      {{"Holder", "Patient"}, {"Disease", "Illness"}});
  add("S_H", {"Patient", "Disease", "Physician"}, {});
  add("S_H", {"Patient", "Disease", "Physician", "Holder", "Plan"},
      {{"Patient", "Holder"}});
  add("S_H", {"Patient", "Disease", "Physician", "Citizen", "HealthAid"},
      {{"Patient", "Citizen"}});
  add("S_H",
      {"Patient", "Disease", "Physician", "Holder", "Plan", "Citizen", "HealthAid"},
      {{"Patient", "Citizen"}, {"Citizen", "Holder"}});
  add("S_N", {"Citizen", "HealthAid"}, {});
  add("S_N", {"Holder", "Plan"}, {});
  add("S_N", {"Patient", "Disease"}, {});
  add("S_N", {"Citizen", "HealthAid", "Patient", "Disease"},
      {{"Citizen", "Patient"}});
  add("S_N", {"Citizen", "HealthAid", "Holder", "Plan"}, {{"Citizen", "Holder"}});
  add("S_N", {"Patient", "Disease", "Holder", "Plan"}, {{"Patient", "Holder"}});
  add("S_N", {"Citizen", "HealthAid", "Patient", "Disease", "Holder", "Plan"},
      {{"Citizen", "Patient"}, {"Citizen", "Holder"}});
  add("S_D", {"Illness", "Treatment"}, {});
  return auths;
}

Status MedicalScenario::PopulateCluster(exec::Cluster& cluster,
                                        const DataConfig& config, Rng& rng) {
  const catalog::Catalog& cat = cluster.catalog();
  CISQP_ASSIGN_OR_RETURN(catalog::RelationId insurance, cat.FindRelation("Insurance"));
  CISQP_ASSIGN_OR_RETURN(catalog::RelationId hospital, cat.FindRelation("Hospital"));
  CISQP_ASSIGN_OR_RETURN(catalog::RelationId registry, cat.FindRelation("Nat_registry"));
  CISQP_ASSIGN_OR_RETURN(catalog::RelationId diseases, cat.FindRelation("Disease_list"));

  static const char* kPlans[] = {"bronze", "silver", "gold", "platinum"};
  static const char* kAids[] = {"none", "partial", "full"};

  std::vector<std::string> disease_names;
  disease_names.reserve(config.diseases);
  for (std::size_t d = 0; d < config.diseases; ++d) {
    disease_names.push_back("disease_" + std::to_string(d));
    CISQP_RETURN_IF_ERROR(cluster.InsertRow(
        diseases, {storage::Value(disease_names.back()),
                   storage::Value("treatment_" + std::to_string(d))}));
  }

  for (std::size_t c = 0; c < config.citizens; ++c) {
    const auto id = static_cast<std::int64_t>(c);
    CISQP_RETURN_IF_ERROR(cluster.InsertRow(
        registry, {storage::Value(id),
                   storage::Value(std::string(kAids[rng.UniformIndex(3)]))}));
    if (rng.Chance(config.hospitalized_fraction)) {
      CISQP_RETURN_IF_ERROR(cluster.InsertRow(
          hospital,
          {storage::Value(id),
           storage::Value(disease_names[rng.UniformIndex(disease_names.size())]),
           storage::Value("dr_" + std::to_string(rng.UniformIndex(20)))}));
    }
    if (rng.Chance(config.insured_fraction)) {
      CISQP_RETURN_IF_ERROR(cluster.InsertRow(
          insurance, {storage::Value(id),
                      storage::Value(std::string(kPlans[rng.UniformIndex(4)]))}));
    }
  }
  return Status::Ok();
}

std::vector<MedicalScenario::NamedQuery> MedicalScenario::WorkloadQueries() {
  return {
      {"paper_ex2.2", std::string(kPaperQuery)},
      {"registry_scan", "SELECT Citizen, HealthAid FROM Nat_registry"},
      {"plans_with_aid",
       "SELECT Holder, Plan, HealthAid FROM Insurance JOIN Nat_registry "
       "ON Holder = Citizen"},
      {"physicians_for_disease",
       "SELECT Patient, Physician FROM Hospital WHERE Disease = 'disease_3'"},
      {"treatments_per_plan",
       "SELECT Plan, Treatment FROM Insurance JOIN Hospital ON Holder = Patient "
       "JOIN Disease_list ON Disease = Illness"},
      {"sec3.2_denied",
       "SELECT Illness, Treatment FROM Disease_list JOIN Hospital "
       "ON Illness = Disease"},
      {"aid_of_patients",
       "SELECT Patient, Disease, HealthAid FROM Hospital JOIN Nat_registry "
       "ON Patient = Citizen"},
      {"insured_patients",
       "SELECT Patient, Plan FROM Insurance JOIN Hospital ON Holder = Patient"},
      {"registry_hospital_sweep",
       "SELECT Citizen, HealthAid, Patient, Disease FROM Nat_registry "
       "JOIN Hospital ON Citizen = Patient"},
  };
}

plan::StatsCatalog MedicalScenario::ComputeStats(const exec::Cluster& cluster) {
  plan::StatsCatalog stats;
  const catalog::Catalog& cat = cluster.catalog();
  for (catalog::RelationId rel = 0; rel < cat.relation_count(); ++rel) {
    stats.Set(rel, plan::StatsCatalog::FromTable(cluster.TableOf(rel)));
  }
  return stats;
}

}  // namespace cisqp::workload
