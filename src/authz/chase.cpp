#include "authz/chase.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "authz/chase_core.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisqp::authz {
namespace {

using chase_internal::EdgeIndex;
using chase_internal::RulePool;

/// One server's closure, produced independently on a pool worker.
struct ServerClosure {
  Status status;  ///< kResourceExhausted when the per-server cap tripped
  std::vector<std::pair<IdSet, JoinPath>> rules;
  ChaseStats stats;
};

/// Semi-naïve fixpoint for one server (chase_core.hpp): seed the pool with
/// the input rules and run the loop with everything as the initial delta.
ServerClosure CloseServer(const catalog::Catalog& cat, const EdgeIndex& index,
                          const std::vector<Authorization>& input,
                          catalog::ServerId server,
                          const ChaseOptions& options) {
  ServerClosure out;
  RulePool pool(index);
  for (const Authorization& auth : input) {
    pool.AddIfNovel(auth.attributes, auth.path);
  }

  out.status = chase_internal::RunSemiNaive(cat, index, pool, 0, server,
                                            options, out.stats);
  if (!out.status.ok()) return out;

  out.rules.reserve(pool.size());
  for (const RulePool::Rule& rule : pool.rules()) {
    out.rules.emplace_back(rule.attrs, rule.path);
  }
  return out;
}

}  // namespace

Result<AuthorizationSet> ChaseClosure(const catalog::Catalog& cat,
                                      const AuthorizationSet& auths,
                                      const ChaseOptions& options,
                                      ChaseStats* stats) {
  CISQP_TRACE_SPAN(chase_span, "authz.chase");
  chase_span.AddAttribute("input_rules", auths.size());
  const EdgeIndex index(cat);
  const std::size_t servers = cat.server_count();

  std::vector<std::vector<Authorization>> inputs(servers);
  for (catalog::ServerId server = 0; server < servers; ++server) {
    inputs[server] = auths.ForServer(server);
  }

  // Per-server closures are independent; fan them out and reduce in server
  // order so the result is identical at every thread count.
  const std::size_t threads =
      options.threads == 0 ? ThreadPool::HardwareConcurrency() : options.threads;
  chase_span.AddAttribute("threads", threads);
  std::vector<ServerClosure> closures(servers);
  {
    ThreadPool pool(std::min(threads, std::max<std::size_t>(servers, 1)));
    pool.ParallelFor(servers, [&](std::size_t server) {
      closures[server] =
          CloseServer(cat, index, inputs[server],
                      static_cast<catalog::ServerId>(server), options);
    });
  }

  ChaseStats local_stats;
  AuthorizationSet closed;
  for (catalog::ServerId server = 0; server < servers; ++server) {
    ServerClosure& closure = closures[server];
    CISQP_RETURN_IF_ERROR(closure.status);
    local_stats.iterations += closure.stats.iterations;
    local_stats.pairs_considered += closure.stats.pairs_considered;
    local_stats.derived_rules += closure.stats.derived_rules;
    // Each task is individually capped, but the cap is a whole-closure
    // budget: enforce it over the ordered running total as the sequential
    // fixpoint did.
    if (local_stats.derived_rules > options.max_derived_rules) {
      return chase_internal::ExceededCap(options);
    }
    for (auto& [attrs, path] : closure.rules) {
      const Status status =
          closed.Add(cat, Authorization{std::move(attrs), std::move(path), server});
      // Exact duplicates cannot arise (the pool dedups); any failure here is
      // a malformed *input* rule that AuthorizationSet::Add would also have
      // rejected, so surface it.
      if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
        return status;
      }
    }
  }

  CISQP_METRIC_ADD("chase.derived_rules", local_stats.derived_rules);
  CISQP_METRIC_ADD("chase.pairs_considered", local_stats.pairs_considered);
  chase_span.AddAttribute("derived_rules", local_stats.derived_rules);
  chase_span.AddAttribute("iterations", local_stats.iterations);
  if (stats != nullptr) *stats = local_stats;
  return closed;
}

}  // namespace cisqp::authz
