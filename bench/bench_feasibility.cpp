// E4 — feasibility characterization: the fraction of random queries with a
// safe executor assignment as a function of authorization density, with the
// algorithm cross-checked against the exhaustive baseline; plus timing of
// both planners.
#include "bench_util.hpp"

#include "planner/exhaustive.hpp"
#include "workload/generator.hpp"

namespace cisqp::bench {
namespace {

struct DensityRow {
  double density;
  int queries = 0;
  int feasible = 0;
  int agreed = 0;
};

void PrintFeasibilityTable() {
  PrintHeader("E4 / §5 claim (Problem 4.1)",
              "feasibility rate vs authorization density; algorithm vs "
              "exhaustive-baseline agreement on every instance");

  Artifact artifact("feasibility", "E4 / §5 claim (Problem 4.1)",
                    "feasibility rate vs authorization density");
  std::printf("%-10s %-9s %-10s %-12s %-10s\n", "density", "queries",
              "feasible", "feas.rate", "agreement");
  for (const double density : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    DensityRow row;
    row.density = density;
    Rng rng(static_cast<std::uint64_t>(7000 + density * 100));
    for (int fed_idx = 0; fed_idx < 6; ++fed_idx) {
      workload::FederationConfig fed_config;
      fed_config.servers = 4;
      fed_config.relations = 6;
      const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
      workload::AuthzConfig authz_config;
      authz_config.base_grant_prob = density;
      authz_config.path_grants_per_server =
          static_cast<std::size_t>(density * 6.0);
      const authz::AuthorizationSet auths =
          workload::GenerateAuthorizations(fed.catalog, authz_config, rng);
      for (int q = 0; q < 10; ++q) {
        workload::QueryConfig query_config;
        query_config.relations = static_cast<std::size_t>(2 + q % 3);
        auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
        if (!spec.ok()) continue;
        auto built = plan::PlanBuilder(fed.catalog).Build(*spec);
        if (!built.ok()) continue;
        planner::SafePlanner planner(fed.catalog, auths);
        const auto report = Unwrap(planner.Analyze(*built), "analyze");
        const auto exhaustive = Unwrap(
            planner::EnumerateSafeAssignments(fed.catalog, auths, *built),
            "exhaustive");
        ++row.queries;
        if (report.feasible) ++row.feasible;
        if (report.feasible == exhaustive.feasible()) ++row.agreed;
      }
    }
    std::printf("%-10.2f %-9d %-10d %-12.3f %d/%d\n", row.density, row.queries,
                row.feasible,
                row.queries ? static_cast<double>(row.feasible) / row.queries : 0.0,
                row.agreed, row.queries);
    artifact.Row()
        .Value("density", row.density)
        .Value("queries", row.queries)
        .Value("feasible", row.feasible)
        .Value("agreed", row.agreed);
  }
  artifact.Write();
  std::printf("\n");
}

/// Fixture-free benchmark over a prepared batch of plans.
struct Prepared {
  workload::Federation fed;
  authz::AuthorizationSet auths;
  std::vector<plan::QueryPlan> plans;
};

Prepared Prepare(double density, std::size_t query_relations) {
  Rng rng(4242);
  workload::FederationConfig fed_config;
  fed_config.servers = 5;
  fed_config.relations = 8;
  Prepared p{workload::GenerateFederation(fed_config, rng), {}, {}};
  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = density;
  authz_config.path_grants_per_server = static_cast<std::size_t>(density * 8.0);
  p.auths = workload::GenerateAuthorizations(p.fed.catalog, authz_config, rng);
  for (int q = 0; q < 16; ++q) {
    workload::QueryConfig query_config;
    query_config.relations = query_relations;
    auto spec = workload::GenerateQuery(p.fed.catalog, query_config, rng);
    if (!spec.ok()) continue;
    auto built = plan::PlanBuilder(p.fed.catalog).Build(*spec);
    if (built.ok()) p.plans.push_back(std::move(*built));
  }
  return p;
}

void BM_SafePlannerAnalyze(benchmark::State& state) {
  const Prepared p = Prepare(0.5, static_cast<std::size_t>(state.range(0)));
  planner::SafePlanner planner(p.fed.catalog, p.auths);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Analyze(p.plans[i % p.plans.size()]));
    ++i;
  }
}
BENCHMARK(BM_SafePlannerAnalyze)->Arg(2)->Arg(4)->Arg(6);

void BM_ExhaustiveBaseline(benchmark::State& state) {
  const Prepared p = Prepare(0.5, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner::EnumerateSafeAssignments(
        p.fed.catalog, p.auths, p.plans[i % p.plans.size()]));
    ++i;
  }
}
BENCHMARK(BM_ExhaustiveBaseline)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace cisqp::bench

int main(int argc, char** argv) {
  cisqp::bench::PrintFeasibilityTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
