#include "storage/column.hpp"

namespace cisqp::storage {
namespace {

// Type tags folded into cell hashes so equal-looking cells of different
// types (int64 1 vs double 1.0) land in different hash classes, matching
// CellsEqual's "differing types never equal".
constexpr std::size_t kNullHash = 0x9e3779b97f4a7c15ull;
constexpr std::size_t kInt64Tag = 1;
constexpr std::size_t kDoubleTag = 2;
constexpr std::size_t kStringTag = 3;

std::size_t HashString(const std::string& s) {
  std::size_t seed = kStringTag;
  HashCombine(seed, s);
  return seed;
}

}  // namespace

void ColumnVector::Reserve(std::size_t n) {
  null_words_.reserve((n + 63) / 64);
  switch (type_) {
    case catalog::ValueType::kInt64: ints_.reserve(n); break;
    case catalog::ValueType::kDouble: doubles_.reserve(n); break;
    case catalog::ValueType::kString: codes_.reserve(n); break;
  }
}

void ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if ((size_ & 63) == 0) null_words_.push_back(0);
  switch (type_) {
    case catalog::ValueType::kInt64:
      ints_.push_back(v.AsInt64());
      wire_bytes_ += 8;
      break;
    case catalog::ValueType::kDouble:
      doubles_.push_back(v.AsDouble());
      wire_bytes_ += 8;
      break;
    case catalog::ValueType::kString:
      codes_.push_back(InternString(v.AsString()));
      wire_bytes_ += v.AsString().size() + 4;
      break;
  }
  ++size_;
}

void ColumnVector::AppendNull() {
  if ((size_ & 63) == 0) null_words_.push_back(0);
  null_words_[size_ >> 6] |= std::uint64_t{1} << (size_ & 63);
  // Zero sentinel keeps data vectors index-aligned; masked by the null bit.
  switch (type_) {
    case catalog::ValueType::kInt64: ints_.push_back(0); break;
    case catalog::ValueType::kDouble: doubles_.push_back(0.0); break;
    case catalog::ValueType::kString: codes_.push_back(0); break;
  }
  wire_bytes_ += 1;
  ++size_;
}

Value ColumnVector::ValueAt(std::size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case catalog::ValueType::kInt64: return Value(ints_[i]);
    case catalog::ValueType::kDouble: return Value(doubles_[i]);
    case catalog::ValueType::kString: return Value(dict_[codes_[i]]);
  }
  return Value::Null();
}

std::size_t ColumnVector::HashAt(std::size_t i) const noexcept {
  if (IsNull(i)) return kNullHash;
  switch (type_) {
    case catalog::ValueType::kInt64: {
      std::size_t seed = kInt64Tag;
      HashCombine(seed, ints_[i]);
      return seed;
    }
    case catalog::ValueType::kDouble: {
      std::size_t seed = kDoubleTag;
      HashCombine(seed, doubles_[i]);
      return seed;
    }
    case catalog::ValueType::kString:
      return dict_hash_[codes_[i]];
  }
  return kNullHash;
}

bool ColumnVector::CellsEqual(std::size_t i, const ColumnVector& other,
                              std::size_t j) const noexcept {
  const bool a_null = IsNull(i);
  const bool b_null = other.IsNull(j);
  if (a_null || b_null) return a_null && b_null;
  if (type_ != other.type_) return false;
  switch (type_) {
    case catalog::ValueType::kInt64: return ints_[i] == other.ints_[j];
    case catalog::ValueType::kDouble: return doubles_[i] == other.doubles_[j];
    case catalog::ValueType::kString:
      if (&dict_ == &other.dict_) return codes_[i] == other.codes_[j];
      return dict_[codes_[i]] == other.dict_[other.codes_[j]];
  }
  return false;
}

std::size_t ColumnVector::WireSizeAt(std::size_t i) const noexcept {
  if (IsNull(i)) return 1;
  if (type_ == catalog::ValueType::kString) return dict_[codes_[i]].size() + 4;
  return 8;
}

void ColumnVector::GatherFrom(const ColumnVector& src,
                              const SelectionVector& ids) {
  CISQP_CHECK(src.type_ == type_);
  Reserve(size_ + ids.size());
  switch (type_) {
    case catalog::ValueType::kInt64:
      for (const std::uint32_t id : ids) {
        if (src.IsNull(id)) {
          AppendNull();
        } else {
          if ((size_ & 63) == 0) null_words_.push_back(0);
          ints_.push_back(src.ints_[id]);
          wire_bytes_ += 8;
          ++size_;
        }
      }
      break;
    case catalog::ValueType::kDouble:
      for (const std::uint32_t id : ids) {
        if (src.IsNull(id)) {
          AppendNull();
        } else {
          if ((size_ & 63) == 0) null_words_.push_back(0);
          doubles_.push_back(src.doubles_[id]);
          wire_bytes_ += 8;
          ++size_;
        }
      }
      break;
    case catalog::ValueType::kString: {
      // One intern per distinct source value; cells then move as codes.
      std::vector<std::uint32_t> remap(src.dict_.size());
      for (std::size_t c = 0; c < src.dict_.size(); ++c) {
        remap[c] = InternString(src.dict_[c]);
      }
      for (const std::uint32_t id : ids) {
        if (src.IsNull(id)) {
          AppendNull();
        } else {
          if ((size_ & 63) == 0) null_words_.push_back(0);
          const std::uint32_t code = remap[src.codes_[id]];
          codes_.push_back(code);
          wire_bytes_ += dict_[code].size() + 4;
          ++size_;
        }
      }
      break;
    }
  }
}

void ColumnVector::GatherFromParallel(const ColumnVector& src,
                                      const SelectionVector& ids,
                                      ThreadPool& pool,
                                      std::size_t morsel_rows) {
  CISQP_CHECK(src.type_ == type_);
  CISQP_CHECK_MSG(size_ == 0, "parallel gather requires an empty column");
  CISQP_CHECK(morsel_rows > 0);
  // Morsels own whole 64-bit null-bitmap words, so two workers never write
  // the same word.
  morsel_rows = (morsel_rows + 63) / 64 * 64;
  const std::size_t n = ids.size();
  null_words_.assign((n + 63) / 64, 0);

  // Strings: intern the source dictionary serially first (same order as the
  // sequential GatherFrom's remap loop → identical output dictionary); the
  // parallel fill then only translates codes.
  std::vector<std::uint32_t> remap;
  switch (type_) {
    case catalog::ValueType::kInt64: ints_.resize(n); break;
    case catalog::ValueType::kDouble: doubles_.resize(n); break;
    case catalog::ValueType::kString:
      remap.resize(src.dict_.size());
      for (std::size_t c = 0; c < src.dict_.size(); ++c) {
        remap[c] = InternString(src.dict_[c]);
      }
      codes_.resize(n);
      break;
  }

  const std::size_t morsels = n == 0 ? 0 : (n + morsel_rows - 1) / morsel_rows;
  std::vector<PaddedSlot<std::size_t>> wire(morsels == 0 ? 1 : morsels);
  pool.ParallelForChunks(
      n, morsel_rows, [&](std::size_t, std::size_t begin, std::size_t end) {
        std::size_t bytes = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint32_t id = ids[i];
          if (src.IsNull(id)) {
            null_words_[i >> 6] |= std::uint64_t{1} << (i & 63);
            bytes += 1;
            // The matching data slot keeps its zero sentinel (resize()
            // value-initialized it), exactly like AppendNull.
            continue;
          }
          switch (type_) {
            case catalog::ValueType::kInt64:
              ints_[i] = src.ints_[id];
              bytes += 8;
              break;
            case catalog::ValueType::kDouble:
              doubles_[i] = src.doubles_[id];
              bytes += 8;
              break;
            case catalog::ValueType::kString: {
              const std::uint32_t code = remap[src.codes_[id]];
              codes_[i] = code;
              bytes += dict_[code].size() + 4;
              break;
            }
          }
        }
        wire[begin / morsel_rows].value += bytes;
      });
  size_ = n;
  for (std::size_t m = 0; m < morsels; ++m) wire_bytes_ += wire[m].value;
}

std::uint32_t ColumnVector::InternString(const std::string& s) {
  const auto it = dict_index_.find(s);
  if (it != dict_index_.end()) return it->second;
  const auto code = static_cast<std::uint32_t>(dict_.size());
  dict_.push_back(s);
  dict_hash_.push_back(HashString(s));
  dict_index_.emplace(s, code);
  return code;
}

ColumnarTable::ColumnarTable(std::vector<Column> header)
    : header_(std::move(header)) {
  cols_.reserve(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    cols_.emplace_back(header_[i].type);
    index_.emplace(header_[i].attribute, i);  // first occurrence wins
  }
}

ColumnarTable::ColumnarTable(std::vector<Column> header,
                             std::vector<ColumnVector> cols)
    : header_(std::move(header)), cols_(std::move(cols)) {
  CISQP_CHECK(header_.size() == cols_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    CISQP_CHECK(cols_[i].type() == header_[i].type);
    index_.emplace(header_[i].attribute, i);
  }
  row_count_ = cols_.empty() ? 0 : cols_[0].size();
  for (const ColumnVector& c : cols_) CISQP_CHECK(c.size() == row_count_);
}

ColumnarTable ColumnarTable::FromRows(const Table& rows) {
  ColumnarTable out(rows.columns());
  for (ColumnVector& c : out.cols_) c.Reserve(rows.row_count());
  for (const Row& row : rows.rows()) out.AppendRow(row);
  return out;
}

Table ColumnarTable::MaterializeRows() const {
  Table out(header_);
  out.Reserve(row_count_);
  for (std::size_t r = 0; r < row_count_; ++r) {
    Row row;
    row.reserve(header_.size());
    for (const ColumnVector& c : cols_) row.push_back(c.ValueAt(r));
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

std::optional<std::size_t> ColumnarTable::ColumnIndex(
    catalog::AttributeId attribute) const {
  const auto it = index_.find(attribute);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void ColumnarTable::AppendRow(const Row& row) {
  CISQP_CHECK(row.size() == cols_.size());
  for (std::size_t i = 0; i < row.size(); ++i) cols_[i].Append(row[i]);
  ++row_count_;
}

std::size_t ColumnarTable::WireSizeBytes() const noexcept {
  std::size_t total = 0;
  for (const ColumnVector& c : cols_) total += c.wire_bytes();
  return total;
}

}  // namespace cisqp::storage
