#include "algebra/operators.hpp"

#include <memory>

#include "algebra/vectorized.hpp"

// The row-level operator API is a thin compatibility shell over the
// vectorized kernels: convert the input once, run the columnar kernel,
// materialize the result once. The original row-at-a-time implementations
// live on in src/testcheck/row_kernels as the differential oracle.
namespace cisqp::algebra {
namespace {

ColumnarBatch AsBatch(const storage::Table& t) {
  return ColumnarBatch::FromTable(
      std::make_shared<const storage::ColumnarTable>(
          storage::ColumnarTable::FromRows(t)));
}

}  // namespace

Result<storage::Table> Project(const storage::Table& input,
                               const std::vector<catalog::AttributeId>& attrs,
                               bool distinct) {
  CISQP_ASSIGN_OR_RETURN(ColumnarBatch out,
                         ProjectBatch(AsBatch(input), attrs, distinct));
  return out.MaterializeRows();
}

Result<storage::Table> Select(const storage::Table& input,
                              const Predicate& predicate) {
  CISQP_ASSIGN_OR_RETURN(ColumnarBatch out,
                         SelectBatch(AsBatch(input), predicate));
  return out.MaterializeRows();
}

Result<storage::Table> HashJoin(const storage::Table& left,
                                const storage::Table& right,
                                const std::vector<EquiJoinAtom>& atoms) {
  CISQP_ASSIGN_OR_RETURN(ColumnarBatch out,
                         JoinBatches(AsBatch(left), AsBatch(right), atoms));
  return out.MaterializeRows();
}

Result<storage::Table> NaturalJoinOnShared(const storage::Table& left,
                                           const storage::Table& right) {
  CISQP_ASSIGN_OR_RETURN(ColumnarBatch out,
                         NaturalJoinBatches(AsBatch(left), AsBatch(right)));
  return out.MaterializeRows();
}

storage::Table Distinct(const storage::Table& input) {
  return DistinctBatch(AsBatch(input)).MaterializeRows();
}

}  // namespace cisqp::algebra
