// Property tests validating the paper's algorithm against the exhaustive
// baseline over populations of random federations (experiment E4's test
// counterpart):
//   P1  SafePlanner reports feasible ⇔ the exhaustive enumeration finds at
//       least one safe assignment (the algorithm solves Problem 4.1);
//   P2  whatever SafePlanner emits passes the independent release verifier;
//   P3  the algorithm's root candidate-server set equals the exhaustive set
//       of feasible root result servers;
//   P4  the min-cost DP agrees on feasibility and never costs more than the
//       heuristic under the same cost model.
#include <gtest/gtest.h>

#include "planner/cost_planner.hpp"
#include "planner/exhaustive.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "plan/builder.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace cisqp::planner {
namespace {

struct SweepCase {
  std::uint64_t seed;
  std::size_t servers;
  std::size_t relations;
  std::size_t query_relations;
  double base_grant_prob;
  double path_grant_share;  ///< scales path_grants_per_server
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EquivalenceSweep, AlgorithmMatchesExhaustiveBaseline) {
  const SweepCase& param = GetParam();
  Rng rng(param.seed);

  workload::FederationConfig fed_config;
  fed_config.servers = param.servers;
  fed_config.relations = param.relations;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);

  workload::AuthzConfig authz_config;
  authz_config.base_grant_prob = param.base_grant_prob;
  authz_config.path_grants_per_server =
      static_cast<std::size_t>(3.0 * param.path_grant_share);
  const authz::AuthorizationSet auths =
      workload::GenerateAuthorizations(fed.catalog, authz_config, rng);

  workload::QueryConfig query_config;
  query_config.relations = param.query_relations;
  // 8 random queries per federation.
  for (int q = 0; q < 8; ++q) {
    auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
    ASSERT_OK(spec.status());
    auto built = plan::PlanBuilder(fed.catalog).Build(*spec);
    ASSERT_OK(built.status());
    const plan::QueryPlan& plan = *built;

    SafePlanner planner(fed.catalog, auths);
    ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(plan));

    ASSERT_OK_AND_ASSIGN(ExhaustiveResult exhaustive,
                         EnumerateSafeAssignments(fed.catalog, auths, plan));

    // P1: feasibility agreement.
    ASSERT_EQ(report.feasible, exhaustive.feasible())
        << "query: " << spec->ToString(fed.catalog) << "\nplan:\n"
        << plan.ToString(fed.catalog) << "\nauths:\n"
        << auths.ToString(fed.catalog);

    if (!report.feasible) continue;

    // P2: the emitted assignment is safe by the independent verifier.
    EXPECT_OK(VerifyAssignment(fed.catalog, auths, plan,
                               report.plan->assignment));

    // P3: root candidate servers == exhaustive feasible root servers.
    std::vector<catalog::ServerId> algo_roots;
    for (const NodeTrace& nt : report.plan->trace.find_candidates) {
      if (nt.node_id == plan.root()->id) {
        for (const Candidate& c : nt.candidates) algo_roots.push_back(c.server);
      }
    }
    std::sort(algo_roots.begin(), algo_roots.end());
    algo_roots.erase(std::unique(algo_roots.begin(), algo_roots.end()),
                     algo_roots.end());
    EXPECT_EQ(algo_roots, exhaustive.feasible_root_servers)
        << "query: " << spec->ToString(fed.catalog);

    // P4: the min-cost DP is feasible too and at most as expensive as the
    // heuristic assignment under the same model.
    MinCostSafePlanner mincost(fed.catalog, auths);
    ASSERT_OK_AND_ASSIGN(CostedPlan costed, mincost.Plan(plan));
    EXPECT_OK(VerifyAssignment(fed.catalog, auths, plan, costed.assignment));
    ASSERT_OK_AND_ASSIGN(
        double heuristic_bytes,
        mincost.EstimateAssignmentBytes(plan, report.plan->assignment));
    EXPECT_LE(costed.total_bytes, heuristic_bytes * (1.0 + 1e-9));
  }
}

// The same P1/P2 properties under random OPEN policies (footnote-1 regime):
// the algorithm and the exhaustive release-based enumeration must agree on
// feasibility, and every emitted assignment must verify.
class OpenPolicyEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpenPolicyEquivalenceSweep, AlgorithmMatchesExhaustiveUnderDenials) {
  Rng rng(GetParam());
  workload::FederationConfig fed_config;
  fed_config.servers = 4;
  fed_config.relations = 6;
  const workload::Federation fed = workload::GenerateFederation(fed_config, rng);
  workload::DenialConfig denial_config;
  denial_config.pair_denials_per_server = 3;
  denial_config.attribute_denials_per_server = 1;
  const authz::OpenPolicySet denials =
      workload::GenerateDenials(fed.catalog, denial_config, rng);

  workload::QueryConfig query_config;
  for (int q = 0; q < 8; ++q) {
    query_config.relations = 2 + static_cast<std::size_t>(q % 3);
    auto spec = workload::GenerateQuery(fed.catalog, query_config, rng);
    ASSERT_OK(spec.status());
    auto built = plan::PlanBuilder(fed.catalog).Build(*spec);
    ASSERT_OK(built.status());

    SafePlanner planner(fed.catalog, denials);
    ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(*built));
    ASSERT_OK_AND_ASSIGN(ExhaustiveResult exhaustive,
                         EnumerateSafeAssignments(fed.catalog, denials, *built));
    ASSERT_EQ(report.feasible, exhaustive.feasible())
        << spec->ToString(fed.catalog) << "\n"
        << denials.ToString(fed.catalog);
    if (report.feasible) {
      EXPECT_OK(VerifyAssignment(fed.catalog, denials, *built,
                                 report.plan->assignment));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpenPolicyEquivalenceSweep,
                         ::testing::Values(301u, 302u, 303u, 304u, 305u, 306u));

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 1000;
  for (const double density : {0.1, 0.3, 0.6, 0.9}) {
    for (const std::size_t query_rels : {2u, 3u, 4u}) {
      for (int repeat = 0; repeat < 3; ++repeat) {
        cases.push_back(SweepCase{seed++, 4, 6, query_rels, density, density * 2});
      }
    }
  }
  // A few larger federations.
  for (int repeat = 0; repeat < 4; ++repeat) {
    cases.push_back(SweepCase{seed++, 6, 9, 5, 0.4, 1.0});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomFederations, EquivalenceSweep, ::testing::ValuesIn(MakeSweep()),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      const SweepCase& c = param_info.param;
      return "seed" + std::to_string(c.seed) + "_q" +
             std::to_string(c.query_relations) + "_d" +
             std::to_string(static_cast<int>(c.base_grant_prob * 100));
    });

}  // namespace
}  // namespace cisqp::planner
