// Tests for the reporting helpers (DOT / Markdown rendering).
#include <gtest/gtest.h>

#include "obs/audit.hpp"
#include "planner/report.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "test_util.hpp"

namespace cisqp::planner {
namespace {

using cisqp::testing::MedicalFixture;

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = fix_.PaperPlan();
    SafePlanner planner(fix_.cat, fix_.auths);
    auto sp = planner.Plan(plan_);
    ASSERT_OK(sp.status());
    assignment_ = sp->assignment;
  }

  MedicalFixture fix_;
  plan::QueryPlan plan_;
  Assignment assignment_;
};

TEST_F(ReportTest, DotContainsEveryNodeAndShipEdges) {
  ASSERT_OK_AND_ASSIGN(std::string dot, ToDot(fix_.cat, plan_, assignment_));
  EXPECT_NE(dot.find("digraph cisqp_plan"), std::string::npos);
  for (int id = 0; id < plan_.node_count(); ++id) {
    EXPECT_NE(dot.find("n" + std::to_string(id) + " [label="), std::string::npos)
        << "missing node n" << id;
  }
  // Fig. 7: n4 (S_I) ships into n2 (S_N) and n2 (S_N) ships into n1 (S_H):
  // at least two dashed edges.
  std::size_t ships = 0;
  for (std::size_t pos = dot.find("style=dashed"); pos != std::string::npos;
       pos = dot.find("style=dashed", pos + 1)) {
    ++ships;
  }
  EXPECT_EQ(ships, 2u);
  // Legend lists all four servers.
  EXPECT_NE(dot.find("legend_3"), std::string::npos);
}

TEST_F(ReportTest, DotProfilesOptional) {
  DotOptions options;
  options.show_profiles = true;
  options.graph_name = "custom";
  ASSERT_OK_AND_ASSIGN(std::string dot,
                       ToDot(fix_.cat, plan_, assignment_, options));
  EXPECT_NE(dot.find("digraph custom"), std::string::npos);
  EXPECT_NE(dot.find("Holder"), std::string::npos);
}

TEST_F(ReportTest, DotRejectsInvalidAssignments) {
  EXPECT_FALSE(ToDot(fix_.cat, plan_, Assignment(plan_.node_count())).ok());
}

TEST_F(ReportTest, MarkdownTableListsReleases) {
  ASSERT_OK_AND_ASSIGN(std::string md,
                       ReleasesToMarkdown(fix_.cat, plan_, assignment_));
  EXPECT_NE(md.find("| node | from | to |"), std::string::npos);
  EXPECT_NE(md.find("| n2 | S_I | S_N |"), std::string::npos);
  EXPECT_NE(md.find("semi-join step 4"), std::string::npos);
  // Three releases → header + separator + 3 rows.
  std::size_t rows = 0;
  for (std::size_t pos = md.find('\n'); pos != std::string::npos;
       pos = md.find('\n', pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 5u);
}

TEST_F(ReportTest, MarkdownReleasesAgreeWithAuditLog) {
  // The releases the Markdown report renders and the decisions the verifier
  // audits are the same facts: one verifier entry per enumerated release,
  // all allowed, and every physical release row has a matching entry.
  obs::AuthzAuditLog& log = obs::AuthzAuditLog::Get();
  log.Enable();
  ASSERT_OK(VerifyAssignment(fix_.cat, fix_.auths, plan_, assignment_));
  log.Disable();

  ASSERT_OK_AND_ASSIGN(std::vector<Release> releases,
                       EnumerateReleases(fix_.cat, plan_, assignment_));
  EXPECT_EQ(log.entries().size(), releases.size());
  EXPECT_EQ(log.denied_count(), 0u);
  for (const obs::AuditEntry& e : log.entries()) {
    EXPECT_TRUE(e.allowed);
    EXPECT_EQ(e.site, obs::AuditSite::kVerifier);
  }
  ASSERT_OK_AND_ASSIGN(std::string md,
                       ReleasesToMarkdown(fix_.cat, plan_, assignment_));
  for (const Release& r : releases) {
    // The report names the release's node and recipient...
    EXPECT_NE(md.find("n" + std::to_string(r.node_id)), std::string::npos);
    EXPECT_NE(md.find(fix_.cat.server(r.to).name), std::string::npos);
    // ...and the audit log holds the matching allow decision.
    bool found = false;
    for (const obs::AuditEntry& e : log.entries()) {
      if (e.node_id == r.node_id &&
          e.server == fix_.cat.server(r.to).name && e.allowed) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << r.ToString(fix_.cat);
  }
  log.Clear();
}

TEST_F(ReportTest, MarkdownIncludesRequestorRelease) {
  VerifyOptions options;
  options.requestor = cisqp::testing::Server(fix_.cat, "S_D");
  ASSERT_OK_AND_ASSIGN(
      std::string md,
      ReleasesToMarkdown(fix_.cat, plan_, assignment_, options));
  EXPECT_NE(md.find("requestor"), std::string::npos);
  EXPECT_NE(md.find("S_D"), std::string::npos);
}

}  // namespace
}  // namespace cisqp::planner
