// Tests for the safe planner beyond the Fig. 7 golden case: the Fig. 5 view
// obligations, infeasibility, the semi-join preference, extensions
// (third-party executor, requestor check), and trace bookkeeping.
#include <gtest/gtest.h>

#include "planner/plan_search.hpp"
#include "planner/safe_planner.hpp"
#include "planner/verifier.hpp"
#include "sql/binder.hpp"
#include "test_util.hpp"

namespace cisqp::planner {
namespace {

using cisqp::testing::Attr;
using cisqp::testing::Attrs;
using cisqp::testing::MedicalFixture;
using cisqp::testing::Path;
using cisqp::testing::Relation;
using cisqp::testing::Server;

class ModeViewsTest : public ::testing::Test {
 protected:
  MedicalFixture fix_;
};

TEST_F(ModeViewsTest, Fig5ViewProfiles) {
  // Join Insurance (left) with Nat_registry (right) on Holder = Citizen.
  const authz::Profile l =
      authz::Profile::OfBaseRelation(fix_.cat, Relation(fix_.cat, "Insurance"));
  const authz::Profile r =
      authz::Profile::OfBaseRelation(fix_.cat, Relation(fix_.cat, "Nat_registry"));
  const JoinModeViews v = ComputeJoinModeViews(
      l, r, {algebra::EquiJoinAtom{Attr(fix_.cat, "Holder"),
                                   Attr(fix_.cat, "Citizen")}});

  EXPECT_EQ(v.left_join_attrs, Attrs(fix_.cat, {"Holder"}));
  EXPECT_EQ(v.right_join_attrs, Attrs(fix_.cat, {"Citizen"}));
  // Fig. 5 [Sl, Sr] step 2: slave (right) sees [Jl, Rl⋈, Rlσ].
  EXPECT_EQ(v.right_slave_view,
            (authz::Profile{Attrs(fix_.cat, {"Holder"}), {}, {}}));
  // Fig. 5 [Sl, Sr] step 4: master (left) sees [Jl ∪ Rrπ, ⋈∪j, σ].
  EXPECT_EQ(v.left_master_view,
            (authz::Profile{Attrs(fix_.cat, {"Holder", "Citizen", "HealthAid"}),
                            Path(fix_.cat, {{"Holder", "Citizen"}}), {}}));
  // Regular joins ship the whole other operand.
  EXPECT_EQ(v.left_full_view, r);
  EXPECT_EQ(v.right_full_view, l);
  EXPECT_EQ(v.condition, Path(fix_.cat, {{"Holder", "Citizen"}}));
}

TEST_F(ModeViewsTest, SigmaAndPathsPropagateIntoViews) {
  authz::Profile l =
      authz::Profile::OfBaseRelation(fix_.cat, Relation(fix_.cat, "Insurance"));
  l.sigma = Attrs(fix_.cat, {"Plan"});
  authz::Profile r =
      authz::Profile::OfBaseRelation(fix_.cat, Relation(fix_.cat, "Hospital"));
  r.join = Path(fix_.cat, {{"Patient", "Citizen"}});
  const JoinModeViews v = ComputeJoinModeViews(
      l, r, {algebra::EquiJoinAtom{Attr(fix_.cat, "Holder"),
                                   Attr(fix_.cat, "Patient")}});
  // Slave view of the left column carries the left σ.
  EXPECT_EQ(v.right_slave_view.sigma, Attrs(fix_.cat, {"Plan"}));
  // Master views accumulate both paths plus the new condition.
  EXPECT_EQ(v.left_master_view.join,
            Path(fix_.cat, {{"Patient", "Citizen"}, {"Holder", "Patient"}}));
  EXPECT_EQ(v.right_master_view.sigma, Attrs(fix_.cat, {"Plan"}));
}

TEST_F(ModeViewsTest, ComputeNodeProfilesFillsEveryNode) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  const std::vector<authz::Profile> profiles =
      ComputeNodeProfiles(fix_.cat, plan);
  ASSERT_EQ(profiles.size(), 7u);
  // Leaves are base profiles.
  EXPECT_EQ(profiles[4],
            authz::Profile::OfBaseRelation(fix_.cat, Relation(fix_.cat, "Insurance")));
  // n3 is the Hospital projection.
  EXPECT_EQ(profiles[3].pi, Attrs(fix_.cat, {"Patient", "Physician"}));
  EXPECT_TRUE(profiles[3].join.empty());
}

class SafePlannerTest : public ::testing::Test {
 protected:
  plan::QueryPlan PlanFor(std::string_view query) const {
    auto spec = sql::ParseAndBind(fix_.cat, query);
    CISQP_CHECK_MSG(spec.ok(), spec.status().ToString());
    auto built = plan::PlanBuilder(fix_.cat).Build(*spec);
    CISQP_CHECK_MSG(built.ok(), built.status().ToString());
    return std::move(*built);
  }

  MedicalFixture fix_;
};

TEST_F(SafePlannerTest, EmittedAssignmentPassesIndependentVerifier) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  SafePlanner planner(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(SafePlan sp, planner.Plan(plan));
  EXPECT_OK(VerifyAssignment(fix_.cat, fix_.auths, plan, sp.assignment));
}

TEST_F(SafePlannerTest, InfeasibleWithoutAuthorizations) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  authz::AuthorizationSet empty;
  SafePlanner planner(fix_.cat, empty);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(plan));
  EXPECT_FALSE(report.feasible);
  // The first join visited (n2) blocks.
  EXPECT_EQ(report.blocking_node, 2);
  EXPECT_EQ(planner.Plan(plan).status().code(), StatusCode::kInfeasible);
}

TEST_F(SafePlannerTest, SingleRelationQueriesAlwaysFeasible) {
  // Unary-only plans execute at the home server; no release happens.
  const plan::QueryPlan plan = PlanFor("SELECT Plan FROM Insurance");
  authz::AuthorizationSet empty;
  SafePlanner planner(fix_.cat, empty);
  ASSERT_OK_AND_ASSIGN(SafePlan sp, planner.Plan(plan));
  EXPECT_EQ(sp.assignment.Of(0).master, Server(fix_.cat, "S_I"));
  EXPECT_EQ(sp.assignment.Of(0).mode, ExecutionMode::kLocal);
}

TEST_F(SafePlannerTest, DiseaseJoinIsInfeasibleForSd) {
  // §3.2: Disease_list ⋈ Hospital exposes either Hospital data to S_D (path
  // leak) or Disease_list to S_H only via its authorized profile. S_H has no
  // grant on Disease_list at all, and S_D's grant has the wrong path — the
  // join node must block.
  const plan::QueryPlan plan =
      PlanFor("SELECT Illness, Treatment FROM Disease_list JOIN Hospital "
              "ON Illness = Disease");
  SafePlanner planner(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(plan));
  EXPECT_FALSE(report.feasible);
}

TEST_F(SafePlannerTest, SemiJoinPreferredWhenBothModesPossible) {
  // Craft a federation where the master could do either mode; principle (i)
  // says semi-join wins.
  catalog::Catalog cat;
  const auto s0 = cat.AddServer("s0").value();
  const auto s1 = cat.AddServer("s1").value();
  ASSERT_OK(cat.AddRelation("L", s0, {{"LK", catalog::ValueType::kInt64},
                                      {"LV", catalog::ValueType::kInt64}}, {"LK"}).status());
  ASSERT_OK(cat.AddRelation("R", s1, {{"RK", catalog::ValueType::kInt64},
                                      {"RV", catalog::ValueType::kInt64}}, {"RK"}).status());
  ASSERT_OK(cat.AddJoinEdge("LK", "RK"));
  authz::AuthorizationSet auths;
  // s1 (right master) may see all of L (regular possible) and the reduced
  // view (semi possible); s0 (slave) may see the RK join column.
  ASSERT_OK(auths.Add(cat, "s1", {"LK", "LV"}, {}));
  ASSERT_OK(auths.Add(cat, "s1", {"LK", "LV", "RK", "RV"}, {{"LK", "RK"}}));
  ASSERT_OK(auths.Add(cat, "s0", {"RK"}, {}));

  auto spec = sql::ParseAndBind(cat, "SELECT LV, RV FROM L JOIN R ON LK = RK");
  ASSERT_OK(spec.status());
  ASSERT_OK_AND_ASSIGN(plan::QueryPlan plan, plan::PlanBuilder(cat).Build(*spec));
  SafePlanner planner(cat, auths);
  ASSERT_OK_AND_ASSIGN(SafePlan sp, planner.Plan(plan));
  // Find the join node.
  int join_id = -1;
  plan.ForEachPreOrder([&](const plan::PlanNode& n) {
    if (n.op == plan::PlanOp::kJoin) join_id = n.id;
  });
  ASSERT_GE(join_id, 0);
  EXPECT_EQ(sp.assignment.Of(join_id).mode, ExecutionMode::kSemiJoin);
  EXPECT_EQ(sp.assignment.Of(join_id).master, s1);
  EXPECT_EQ(sp.assignment.Of(join_id).slave, std::optional(s0));
}

TEST_F(SafePlannerTest, ThirdPartyRescuesOtherwiseInfeasibleJoin) {
  catalog::Catalog cat;
  const auto s0 = cat.AddServer("s0").value();
  const auto s1 = cat.AddServer("s1").value();
  ASSERT_OK(cat.AddServer("notary").status());
  ASSERT_OK(cat.AddRelation("L", s0, {{"LK", catalog::ValueType::kInt64}}, {"LK"}).status());
  ASSERT_OK(cat.AddRelation("R", s1, {{"RK", catalog::ValueType::kInt64}}, {"RK"}).status());
  ASSERT_OK(cat.AddJoinEdge("LK", "RK"));
  authz::AuthorizationSet auths;
  // Neither operand server may see the other side; the notary sees both.
  ASSERT_OK(auths.Add(cat, "notary", {"LK"}, {}));
  ASSERT_OK(auths.Add(cat, "notary", {"RK"}, {}));

  auto spec = sql::ParseAndBind(cat, "SELECT LK, RK FROM L JOIN R ON LK = RK");
  ASSERT_OK(spec.status());
  ASSERT_OK_AND_ASSIGN(plan::QueryPlan plan, plan::PlanBuilder(cat).Build(*spec));

  SafePlanner plain(cat, auths);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, plain.Analyze(plan));
  EXPECT_FALSE(report.feasible);

  SafePlannerOptions options;
  options.allow_third_party = true;
  SafePlanner extended(cat, auths, options);
  ASSERT_OK_AND_ASSIGN(SafePlan sp, extended.Plan(plan));
  int join_id = -1;
  plan.ForEachPreOrder([&](const plan::PlanNode& n) {
    if (n.op == plan::PlanOp::kJoin) join_id = n.id;
  });
  EXPECT_EQ(sp.assignment.Of(join_id).master, cat.FindServer("notary").value());
  EXPECT_EQ(sp.assignment.Of(join_id).origin, FromChild::kThird);
  // The third-party assignment also passes the release-based verifier.
  EXPECT_OK(VerifyAssignment(cat, auths, plan, sp.assignment));
}

TEST_F(SafePlannerTest, RequestorCheckBlocksUnauthorizedRecipient) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  // S_D has no authorization over the result profile.
  SafePlannerOptions options;
  options.requestor = Server(fix_.cat, "S_D");
  SafePlanner planner(fix_.cat, fix_.auths, options);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(plan));
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.blocking_node, 0);

  // The computing master itself is always an acceptable requestor.
  SafePlannerOptions options2;
  options2.requestor = Server(fix_.cat, "S_H");
  SafePlanner planner2(fix_.cat, fix_.auths, options2);
  ASSERT_OK_AND_ASSIGN(PlanningReport report2, planner2.Analyze(plan));
  EXPECT_TRUE(report2.feasible);
}

TEST_F(SafePlannerTest, CountersPreferBusyServers) {
  // Two joins both executable by either server; the second join must prefer
  // the server already executing the first (higher counter).
  catalog::Catalog cat;
  const auto s0 = cat.AddServer("s0").value();
  ASSERT_OK(cat.AddServer("s1").status());
  const auto s1 = cat.FindServer("s1").value();
  ASSERT_OK(cat.AddRelation("A", s0, {{"AK", catalog::ValueType::kInt64}}, {"AK"}).status());
  ASSERT_OK(cat.AddRelation("B", s1, {{"BK", catalog::ValueType::kInt64},
                                      {"BL", catalog::ValueType::kInt64}}, {"BK"}).status());
  ASSERT_OK(cat.AddRelation("C", s1, {{"CK", catalog::ValueType::kInt64}}, {"CK"}).status());
  ASSERT_OK(cat.AddJoinEdge("AK", "BK"));
  ASSERT_OK(cat.AddJoinEdge("BL", "CK"));
  authz::AuthorizationSet auths;
  // Everyone sees everything (single big grants per relation pair paths).
  for (const char* server : {"s0", "s1"}) {
    ASSERT_OK(auths.Add(cat, server, {"AK"}, {}));
    ASSERT_OK(auths.Add(cat, server, {"BK", "BL"}, {}));
    ASSERT_OK(auths.Add(cat, server, {"CK"}, {}));
    ASSERT_OK(auths.Add(cat, server, {"AK", "BK", "BL"}, {{"AK", "BK"}}));
    ASSERT_OK(auths.Add(cat, server, {"AK", "BK", "BL", "CK"},
                        {{"AK", "BK"}, {"BL", "CK"}}));
  }
  auto spec = sql::ParseAndBind(
      cat, "SELECT AK, CK FROM A JOIN B ON AK = BK JOIN C ON BL = CK");
  ASSERT_OK(spec.status());
  ASSERT_OK_AND_ASSIGN(plan::QueryPlan plan, plan::PlanBuilder(cat).Build(*spec));
  SafePlanner planner(cat, auths);
  ASSERT_OK_AND_ASSIGN(SafePlan sp, planner.Plan(plan));
  // Both join nodes should land on the same master (counter preference).
  std::vector<catalog::ServerId> masters;
  plan.ForEachPreOrder([&](const plan::PlanNode& n) {
    if (n.op == plan::PlanOp::kJoin) masters.push_back(sp.assignment.Of(n.id).master);
  });
  ASSERT_EQ(masters.size(), 2u);
  EXPECT_EQ(masters[0], masters[1]);
}

TEST_F(SafePlannerTest, AnalyzeRejectsMalformedPlans) {
  SafePlanner planner(fix_.cat, fix_.auths);
  EXPECT_EQ(planner.Analyze(plan::QueryPlan{}).status().code(),
            StatusCode::kInvalidArgument);
  auto bad = plan::PlanNode::Project(
      plan::PlanNode::Relation(Relation(fix_.cat, "Insurance")),
      {Attr(fix_.cat, "Patient")});
  EXPECT_EQ(planner.Analyze(plan::QueryPlan(std::move(bad))).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SafePlannerTest, ResultAuthorizationDoesNotImplyExecutability) {
  // A finding this reproduction surfaces (EXPERIMENTS.md E11): Fig. 3 rule 3
  // authorizes S_I for the *result* of "treatments per plan" — attributes
  // {Holder, Plan, Treatment} over path {(Holder,Patient),(Disease,Illness)}
  // — yet NO safe execution exists: not for any join order, not even with
  // the footnote-3 third-party extension. Result-level and execution-level
  // authorization are different creatures in this model.
  const char* query =
      "SELECT Plan, Treatment FROM Insurance JOIN Hospital ON Holder = Patient "
      "JOIN Disease_list ON Disease = Illness";
  // The result view itself is authorized for S_I:
  authz::Profile result_view;
  result_view.pi = Attrs(fix_.cat, {"Plan", "Treatment"});
  result_view.join = cisqp::testing::Path(
      fix_.cat, {{"Holder", "Patient"}, {"Disease", "Illness"}});
  EXPECT_TRUE(fix_.auths.CanView(result_view, Server(fix_.cat, "S_I")));

  // ...but no execution strategy is safe, under any extension:
  const plan::QueryPlan plan = PlanFor(query);
  SafePlannerOptions with_third_party;
  with_third_party.allow_third_party = true;
  SafePlanner planner(fix_.cat, fix_.auths, with_third_party);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(plan));
  EXPECT_FALSE(report.feasible);

  auto spec = sql::ParseAndBind(fix_.cat, query);
  ASSERT_OK(spec.status());
  FeasiblePlanSearch search(fix_.cat, fix_.auths);
  PlanSearchOptions search_options;
  search_options.planner_options = with_third_party;
  EXPECT_EQ(search.Search(*spec, search_options).status().code(),
            StatusCode::kInfeasible);
}

TEST_F(SafePlannerTest, InfeasibilityDiagnosticsNameDeniedViews) {
  // The §3.2 denied join: the report must list, per failed probe, the server,
  // the attempted role, and the exact view profile the policy refused.
  const plan::QueryPlan plan =
      PlanFor("SELECT Illness, Treatment FROM Disease_list JOIN Hospital "
              "ON Illness = Disease");
  SafePlanner planner(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(plan));
  ASSERT_FALSE(report.feasible);
  ASSERT_FALSE(report.blocking_rejections.empty());
  // Both operand servers must appear among the rejections, and at least one
  // rejection must name a regular-join master attempt.
  bool saw_sd = false;
  bool saw_sh = false;
  bool saw_master = false;
  for (const CandidateRejection& r : report.blocking_rejections) {
    if (r.server == Server(fix_.cat, "S_D")) saw_sd = true;
    if (r.server == Server(fix_.cat, "S_H")) saw_sh = true;
    if (r.role == "master" && r.mode == ExecutionMode::kRegularJoin) {
      saw_master = true;
    }
    EXPECT_FALSE(fix_.auths.CanView(r.required_view, r.server))
        << r.ToString(fix_.cat);
  }
  EXPECT_TRUE(saw_sd);
  EXPECT_TRUE(saw_sh);
  EXPECT_TRUE(saw_master);
  const std::string rendered =
      FormatRejections(fix_.cat, report.blocking_rejections);
  EXPECT_NE(rendered.find("cannot be"), std::string::npos);
  EXPECT_NE(rendered.find("needs ["), std::string::npos);
}

TEST_F(SafePlannerTest, RequestorRejectionIsDiagnosed) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  SafePlannerOptions options;
  options.requestor = Server(fix_.cat, "S_D");
  SafePlanner planner(fix_.cat, fix_.auths, options);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(plan));
  ASSERT_FALSE(report.feasible);
  ASSERT_EQ(report.blocking_rejections.size(), 1u);
  EXPECT_EQ(report.blocking_rejections[0].role, "requestor");
  EXPECT_EQ(report.blocking_rejections[0].server, Server(fix_.cat, "S_D"));
}

TEST_F(SafePlannerTest, FeasiblePlansCarryNoBlockingDiagnostics) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  SafePlanner planner(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(plan));
  ASSERT_TRUE(report.feasible);
  EXPECT_TRUE(report.blocking_rejections.empty());
}

TEST_F(SafePlannerTest, CanViewCallsAreCounted) {
  const plan::QueryPlan plan = fix_.PaperPlan();
  SafePlanner planner(fix_.cat, fix_.auths);
  ASSERT_OK_AND_ASSIGN(PlanningReport report, planner.Analyze(plan));
  EXPECT_GT(report.can_view_calls, 0u);
}

}  // namespace
}  // namespace cisqp::planner
